"""A tiny RDD-style dataflow API over the ASK shuffle.

The paper integrates ASK into Spark through a plugin (~1800 lines of Java,
§4) whose job is to hand `reduceByKey` traffic to the daemon instead of the
Spark shuffle.  This module is that plugin's analogue for the simulated
stack: a lazily-evaluated, partitioned collection whose ``reduce_by_key``
action runs through an :class:`~repro.core.service.AskService`.

::

    lines = Dataset.from_partitions({"m0": [...], "m1": [...]})
    counts = (
        lines.flat_map(str.split)
             .map(lambda word: (word.encode(), 1))
             .reduce_by_key()
    )
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel

T = TypeVar("T")
U = TypeVar("U")

_DRIVER = "__driver__"


class Dataset:
    """A partitioned collection with lazy transformations.

    Partitions are keyed by machine name; transformations record a pipeline
    that is applied per partition when an action runs.  Only the patterns
    the ASK integration needs are provided — this is a plugin shim, not a
    dataframe engine.
    """

    def __init__(
        self,
        partitions: Dict[str, list],
        pipeline: Optional[List[Callable[[Iterable], Iterable]]] = None,
    ) -> None:
        if not partitions:
            raise ValueError("a Dataset needs at least one partition")
        self._partitions = partitions
        self._pipeline = list(pipeline or [])

    # ------------------------------------------------------------------
    @classmethod
    def from_partitions(cls, partitions: Dict[str, Iterable]) -> "Dataset":
        return cls({host: list(items) for host, items in partitions.items()})

    @classmethod
    def parallelize(cls, items: Iterable, machines: int = 3) -> "Dataset":
        """Deal a collection across ``machines`` synthetic hosts."""
        if machines < 1:
            raise ValueError("machines must be >= 1")
        partitions: Dict[str, list] = {f"m{i}": [] for i in range(machines)}
        for index, item in enumerate(items):
            partitions[f"m{index % machines}"].append(item)
        return cls(partitions)

    # ------------------------------------------------------------------
    # Lazy transformations
    # ------------------------------------------------------------------
    def _derive(self, stage: Callable[[Iterable], Iterable]) -> "Dataset":
        return Dataset(self._partitions, self._pipeline + [stage])

    def map(self, fn: Callable[[T], U]) -> "Dataset":
        return self._derive(lambda items: (fn(x) for x in items))

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "Dataset":
        return self._derive(lambda items: (y for x in items for y in fn(x)))

    def filter(self, predicate: Callable[[T], bool]) -> "Dataset":
        return self._derive(lambda items: (x for x in items if predicate(x)))

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _materialize(self) -> Dict[str, list]:
        out = {}
        for host, items in self._partitions.items():
            stream: Iterable = items
            for stage in self._pipeline:
                stream = stage(stream)
            out[host] = list(stream)
        return out

    def collect(self) -> list:
        """All records, partition order then record order."""
        return [item for items in self._materialize().values() for item in items]

    def count(self) -> int:
        return sum(len(items) for items in self._materialize().values())

    def reduce_by_key(
        self,
        config: Optional[AskConfig] = None,
        fault: Optional[FaultModel] = None,
        region_size: Optional[int] = None,
        check: bool = True,
    ) -> dict[bytes, int]:
        """Sum values per key through the ASK switch.

        Records must be ``(bytes, int)`` tuples by this point in the
        pipeline (apply :meth:`map` first if not).  Each partition's host
        becomes a sender; a driver host receives the aggregate.  Empty
        partitions are fine — their hosts simply send nothing.
        """
        streams = self._materialize()
        for host, stream in streams.items():
            for record in stream[:1]:
                key, value = record  # raises naturally if malformed
                if not isinstance(key, bytes):
                    raise TypeError(
                        f"reduce_by_key needs (bytes, int) records; partition "
                        f"{host!r} starts with key {key!r}"
                    )
        cfg = config if config is not None else AskConfig.small()
        service = AskService(cfg, hosts=[*streams, _DRIVER], fault=fault)
        sender_streams = {h: s for h, s in streams.items() if s}
        if not sender_streams:
            return {}
        result = service.aggregate(
            sender_streams, receiver=_DRIVER, region_size=region_size, check=check
        )
        return dict(result.values)

    def count_by_value(self, **kwargs) -> dict[bytes, int]:
        """WordCount convenience: records are keys, counts are summed."""
        return self.map(lambda key: (key, 1)).reduce_by_key(**kwargs)
