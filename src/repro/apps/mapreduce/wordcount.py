"""WordCount workload generation for the MapReduce engine (§5.5).

Each mapper produces a stream of ``(word, 1)`` tuples — either uniformly
random over a per-mapper key space (the paper's synthetic setting: "each
mapper has 2^18 distinct keys … randomly generate N key-value tuples per
mapper") or drawn from a synthetic corpus.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.datasets import SyntheticCorpus
from repro.workloads.generators import uniform_stream


def mapper_stream(
    mapper_id: int,
    num_tuples: int,
    distinct_keys: int,
    corpus: Optional[SyntheticCorpus] = None,
    seed: int = 0,
) -> list[tuple[bytes, int]]:
    """The key-value stream one mapper emits.

    Mappers share the global key space (WordCount counts the same words
    everywhere), so the key space does not depend on ``mapper_id`` — only
    the sampling seed does.
    """
    if corpus is not None:
        return corpus.stream(num_tuples, order="shuffled", seed=seed * 7919 + mapper_id)
    return uniform_stream(
        num_tuples,
        distinct_keys,
        seed=seed * 7919 + mapper_id,
        key_fn=lambda rank: b"w%d" % rank,
    )


def wordcount_streams(
    machines: int,
    mappers_per_machine: int,
    tuples_per_mapper: int,
    distinct_keys: int,
    corpus: Optional[SyntheticCorpus] = None,
    seed: int = 0,
) -> dict[str, list[tuple[bytes, int]]]:
    """Per-machine concatenation of that machine's mapper outputs."""
    streams: dict[str, list[tuple[bytes, int]]] = {}
    mapper_id = 0
    for machine in range(machines):
        host = f"m{machine}"
        tuples: list[tuple[bytes, int]] = []
        for _ in range(mappers_per_machine):
            tuples.extend(
                mapper_stream(mapper_id, tuples_per_mapper, distinct_keys, corpus, seed)
            )
            mapper_id += 1
        streams[host] = tuples
    return streams
