"""Functional mini-MapReduce engine.

Runs WordCount end to end at any scale and returns both the result and the
shuffle statistics.  The ``ask`` backend creates one ASK aggregation task
per reducer (the reducer host is the task receiver; every machine is a
sender with the tuples of that reducer's key partition).  The Spark-family
backends pre-aggregate per machine and merge at the reducers — functionally
identical output, which the integration tests assert.

Co-located traffic note: in the paper, a mapper whose reducer lives on the
same machine hands its tuples over locally; here those tuples still transit
the simulated TOR (a hairpin), which is behaviour-preserving for results
and statistics because the switch absorbs them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.preaggr import preaggregate
from repro.core.config import AskConfig
from repro.core.hashing import fnv1a32
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.workloads.stream import merge_results


@dataclass
class FunctionalJobReport:
    """Outcome of a functional WordCount run."""

    backend: str
    result: dict[bytes, int]
    reducers: int
    tuples_in: int = 0
    switch_aggregated_tuples: int = 0
    switch_acked_packets: int = 0
    data_packets: int = 0
    per_task_stats: list = field(default_factory=list)

    @property
    def switch_aggregation_ratio(self) -> float:
        return self.switch_aggregated_tuples / self.tuples_in if self.tuples_in else 0.0


def _partition(key: bytes, reducers: int) -> int:
    """Reducer partition function (stable across backends)."""
    return fnv1a32(key, 0x9E3779B9) % reducers


def run_wordcount(
    streams: dict[str, list[tuple[bytes, int]]],
    backend: str = "ask",
    reducers_per_machine: int = 1,
    config: Optional[AskConfig] = None,
    fault: Optional[FaultModel] = None,
    value_bits: int = 32,
) -> FunctionalJobReport:
    """Run WordCount functionally over per-machine streams.

    ``streams`` maps machine name → that machine's mapper output.  Reducers
    are placed round-robin over machines; reducer ``r`` lives on machine
    ``r % machines``.
    """
    machines = list(streams)
    reducers = reducers_per_machine * len(machines)
    tuples_in = sum(len(s) for s in streams.values())

    # Partition every machine's output by reducer.
    partitions: dict[int, dict[str, list[tuple[bytes, int]]]] = {
        r: {m: [] for m in machines} for r in range(reducers)
    }
    for machine, stream in streams.items():
        for key, value in stream:
            partitions[_partition(key, reducers)][machine].append((key, value))

    if backend == "ask":
        return _run_ask(machines, partitions, reducers, tuples_in, config, fault, value_bits)
    if backend in ("spark", "spark_shm", "spark_rdma"):
        return _run_spark_family(backend, machines, partitions, reducers, tuples_in, value_bits)
    raise ValueError(f"unknown backend {backend!r}")


def _run_ask(
    machines: list[str],
    partitions: dict[int, dict[str, list[tuple[bytes, int]]]],
    reducers: int,
    tuples_in: int,
    config: Optional[AskConfig],
    fault: Optional[FaultModel],
    value_bits: int,
) -> FunctionalJobReport:
    cfg = config if config is not None else AskConfig.small()
    if cfg.value_bits != value_bits:
        raise ValueError("config.value_bits must match the requested value_bits")
    service = AskService(cfg, hosts=machines, fault=fault)
    region_size = max(1, cfg.copy_size // max(1, reducers))

    tasks = []
    for reducer, per_machine in partitions.items():
        receiver = machines[reducer % len(machines)]
        sender_streams = {m: s for m, s in per_machine.items() if s}
        if not sender_streams:
            continue
        tasks.append(
            service.submit(sender_streams, receiver, region_size=region_size)
        )
    service.run_to_completion()

    result = merge_results(
        [task.result.values for task in tasks], value_bits
    )
    report = FunctionalJobReport(
        backend="ask", result=result, reducers=reducers, tuples_in=tuples_in
    )
    for task in tasks:
        report.per_task_stats.append(task.stats)
        report.switch_aggregated_tuples += task.stats.tuples_aggregated_at_switch
        report.switch_acked_packets += task.stats.acks_from_switch
        report.data_packets += (
            task.stats.data_packets_sent + task.stats.long_packets_sent
        )
    return report


def _run_spark_family(
    backend: str,
    machines: list[str],
    partitions: dict[int, dict[str, list[tuple[bytes, int]]]],
    reducers: int,
    tuples_in: int,
    value_bits: int,
) -> FunctionalJobReport:
    # Mapper side: per-machine, per-partition pre-aggregation (the sort
    # based combiner every Spark variant runs), then reducer-side merge.
    reducer_outputs = []
    for reducer, per_machine in partitions.items():
        partials = [
            preaggregate(stream, value_bits)
            for stream in per_machine.values()
            if stream
        ]
        reducer_outputs.append(merge_results(partials, value_bits))
    result = merge_results(reducer_outputs, value_bits)
    return FunctionalJobReport(
        backend=backend, result=result, reducers=reducers, tuples_in=tuples_in
    )
