"""DeploymentBuilder: one place for rack wiring, both backends."""

import pytest

from repro.core.config import AskConfig
from repro.net.fault import FaultModel
from repro.runtime import DeploymentBuilder, SimFabric


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        DeploymentBuilder(AskConfig.small(), backend="dpdk")


def test_build_without_racks_rejected():
    with pytest.raises(ValueError, match="rack"):
        DeploymentBuilder(AskConfig.small()).build(on_task_complete=lambda t: None)


def test_multirack_asyncio_builds():
    """Multi-rack asyncio deployments are supported: each switch gets its
    own UDP endpoint and a rack view, frames hop name-to-name."""
    builder = DeploymentBuilder(AskConfig.small(), backend="asyncio")
    builder.add_rack(2).add_rack(2)
    deployment = builder.build(on_task_complete=lambda t: None)
    try:
        assert set(deployment.switches) == {"switch", "tor-r1"}
        assert deployment.fabric.host_names == ["h0", "h1", "h2", "h3"]
        assert deployment.fabric.rack_of_host("h2") == "r1"
    finally:
        deployment.close()


def test_single_rack_wiring():
    builder = DeploymentBuilder(AskConfig.small())
    builder.add_rack(3)
    deployment = builder.build(on_task_complete=lambda t: None)
    assert deployment.backend == "sim"
    assert isinstance(deployment.fabric, SimFabric)
    assert list(deployment.daemons) == ["h0", "h1", "h2"]
    assert deployment.switch.name == "switch"
    assert deployment.racks == {"r0": ["h0", "h1", "h2"]}
    assert deployment.fabric.host_names == ["h0", "h1", "h2"]
    assert deployment.control.switch_names == frozenset({"switch"})


def test_host_numbering_continues_across_racks():
    builder = DeploymentBuilder(AskConfig.small())
    builder.add_rack(2).add_rack(2)
    deployment = builder.build(on_task_complete=lambda t: None)
    assert list(deployment.daemons) == ["h0", "h1", "h2", "h3"]
    assert deployment.racks == {"r0": ["h0", "h1"], "r1": ["h2", "h3"]}
    assert set(deployment.switches) == {"switch", "tor-r1"}


def test_explicit_names_and_switch_property_guard():
    builder = DeploymentBuilder(AskConfig.small())
    builder.add_rack(["a", "b"], switch_name="tor-r0", rack="r0")
    builder.add_rack(["c"], switch_name="tor-r1", rack="r1")
    deployment = builder.build(on_task_complete=lambda t: None)
    assert list(deployment.daemons) == ["a", "b", "c"]
    with pytest.raises(ValueError, match="switches"):
        deployment.switch  # ambiguous on a multi-rack deployment


def test_daemons_see_only_switches_registered_so_far():
    """Per-rack wiring order is part of the §7 contract: a rack's daemons
    classify switch ACKs against the switches registered when the daemon
    was built (its own TOR and earlier racks')."""
    builder = DeploymentBuilder(AskConfig.small())
    builder.add_rack(1, switch_name="tor-r0", rack="r0")
    builder.add_rack(1, switch_name="tor-r1", rack="r1")
    deployment = builder.build(on_task_complete=lambda t: None)
    assert deployment.daemons["h0"].channels[0].switch_names == frozenset({"tor-r0"})
    assert deployment.daemons["h1"].channels[0].switch_names == frozenset(
        {"tor-r0", "tor-r1"}
    )


def test_sim_fabric_rejects_second_switch():
    fabric = SimFabric()

    class Sw:
        name = "switch"

        def receive(self, packet):
            pass

    fabric.install_switch(Sw())
    with pytest.raises(RuntimeError, match="already"):
        fabric.install_switch(Sw())


def test_same_seed_same_deployment_schedule():
    """The determinism contract across the builder: a fixed fault seed
    produces an identical schedule, stats and retransmission counts."""

    def fingerprint():
        from repro.core.service import AskService

        service = AskService(
            AskConfig.small(),
            hosts=3,
            fault=FaultModel(loss_rate=0.1, duplicate_rate=0.05, seed=3),
        )
        streams = {
            "h0": [(b"k%d" % (i % 7), i) for i in range(200)],
            "h1": [(b"k%d" % (i % 5), i) for i in range(200)],
        }
        result = service.aggregate(streams, receiver="h2", check=True)
        return (
            service.sim.events_processed,
            service.sim.now,
            result.stats.retransmissions,
            result.stats.duplicate_packets_dropped,
            sorted(result.values.items()),
        )

    assert fingerprint() == fingerprint()
