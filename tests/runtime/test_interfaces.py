"""The runtime protocols are satisfied by both backends, structurally."""

from repro.core.config import AskConfig
from repro.net.simulator import Simulator
from repro.runtime import (
    AsyncioFabric,
    Clock,
    Fabric,
    SimFabric,
    SwitchFabricView,
    TaskRunner,
    TimerHandle,
)


def test_simulator_is_a_clock():
    sim = Simulator()
    assert isinstance(sim, Clock)
    handle = sim.schedule(10, lambda: None)
    assert isinstance(handle, TimerHandle)
    handle.cancel()
    handle.cancel()  # idempotent


def test_sim_fabric_satisfies_fabric_and_switch_view():
    fabric = SimFabric()
    assert isinstance(fabric, Fabric)
    assert isinstance(fabric, SwitchFabricView)
    assert isinstance(fabric.runner(), TaskRunner)
    assert isinstance(fabric.clock, Clock)


def test_asyncio_fabric_satisfies_fabric_and_switch_view():
    fabric = AsyncioFabric()
    try:
        assert isinstance(fabric, Fabric)
        assert isinstance(fabric, SwitchFabricView)
        assert isinstance(fabric.runner(), TaskRunner)
        assert isinstance(fabric.clock, Clock)
    finally:
        fabric.close()


def test_asyncio_clock_monotonic_integer_ns():
    fabric = AsyncioFabric()
    try:
        clock = fabric.clock
        a = clock.now
        b = clock.now
        assert isinstance(a, int) and isinstance(b, int)
        assert 0 <= a <= b
    finally:
        fabric.close()


def test_asyncio_clock_timers_fire_in_order():
    fabric = AsyncioFabric()
    try:
        fired = []
        clock = fabric.clock
        clock.schedule(2_000_000, fired.append, "late")
        clock.schedule(500_000, fired.append, "early")
        cancelled = clock.schedule(1_000_000, fired.append, "never")
        cancelled.cancel()
        import asyncio

        fabric.loop.run_until_complete(asyncio.sleep(0.01))
        assert fired == ["early", "late"]
    finally:
        fabric.close()


def test_asyncio_clock_rejects_negative_delay():
    import pytest

    fabric = AsyncioFabric()
    try:
        with pytest.raises(ValueError):
            fabric.clock.schedule(-1, lambda: None)
    finally:
        fabric.close()


def test_host_daemon_and_switch_accept_any_clock():
    """The stack types against Clock, not Simulator — a plain object with
    the right surface wires up fine (structural typing, no isinstance)."""

    class ManualClock:
        def __init__(self):
            self._now = 0
            self.scheduled = []

        @property
        def now(self):
            return self._now

        def schedule(self, delay_ns, callback, *args):
            self.scheduled.append((self._now + delay_ns, callback, args))
            return self

        def at(self, time_ns, callback, *args):
            self.scheduled.append((time_ns, callback, args))
            return self

        def call_later(self, delay_ns, callback, *args):
            self.scheduled.append((self._now + delay_ns, callback, args))

        def call_at(self, time_ns, callback, *args):
            self.scheduled.append((time_ns, callback, args))

        def cancel(self):
            pass

    from repro.core.controlplane import ControlPlane
    from repro.core.daemon import HostDaemon
    from repro.switch.switch import AskSwitch

    clock = ManualClock()
    assert isinstance(clock, Clock)
    config = AskConfig.small()
    switch = AskSwitch(config, clock, max_tasks=2, max_channels=4)
    daemon = HostDaemon(
        "h0", clock, config, ControlPlane(), send_fn=lambda pkt: None,
        on_task_complete=lambda task: None,
    )
    assert switch.clock is clock
    assert daemon.clock is clock
