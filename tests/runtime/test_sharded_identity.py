"""The sharded simulator's correctness contract: serial == sharded.

The property: for ANY scenario — random topology shape, fault seeds,
placements, shard counts, task mixes, chaos schedules (including events
landing exactly on window boundaries) — the rack-sharded conservative
PDES run produces a result fingerprint byte-identical to the one-process
serial run.  Not statistically close: identical, down to every per-link
counter and every task's ``values_sha256``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.errors import ConfigError, TopologyError
from repro.runtime.sharded import (
    ChaosAction,
    ShardedScenario,
    ShardedTask,
    demo_plan,
    demo_scenario,
    make_plan,
    run_serial,
    run_sharded,
    submission_order,
    task_homes,
)

CORE_LATENCY_NS = 4_000


def _config():
    return AskConfig.small(window_size=16, retransmit_timeout_us=40.0)


def _stream(rng, length, keyspace=24):
    keys = [f"k{i:02d}".encode() for i in range(keyspace)]
    return tuple((rng.choice(keys), rng.randint(1, 99)) for _ in range(length))


@st.composite
def sharded_scenarios(draw):
    """A random scenario plus a plan it is closed under.

    Tree topologies dominate on purpose: with single-rack pods and
    spread spines, leaf-placed tasks transit spines owned by *other*
    shards, which is the only way aggregation traffic crosses the cut
    (the zero-latency control plane pins each task's racks to one
    shard).  Flat meshes exercise the window loop with idle cross links.
    """
    import random

    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    tree = draw(st.booleans())
    racks_list = []
    if tree:
        num_pods = draw(st.integers(2, 4))
        pods = {}
        host_id = 0
        for p in range(num_pods):
            rack = f"r{p}"
            racks_list.append(rack)
            pods[f"p{p}"] = {
                rack: tuple(f"h{host_id + i}" for i in range(2))
            }
            host_id += 2
        topo_kwargs = {"pods": pods, "placement": "leaf"}
    else:
        num_racks = draw(st.integers(2, 4))
        racks = {}
        host_id = 0
        for r in range(num_racks):
            rack = f"r{r}"
            racks_list.append(rack)
            racks[rack] = tuple(f"h{host_id + i}" for i in range(2))
            host_id += 2
        topo_kwargs = {"racks": racks}

    shards = draw(st.integers(2, len(racks_list)))
    spread = draw(st.booleans()) if tree else False

    scenario_probe = ShardedScenario(config=_config(), **topo_kwargs)
    plan = make_plan(scenario_probe, shards, spread_spines=spread)
    rack_hosts = scenario_probe.rack_hosts()
    rack_of = scenario_probe.rack_of()
    spine_of = scenario_probe.spine_of()

    tasks = []
    for _ in range(draw(st.integers(1, 3))):
        # Senders may live on ANY rack of the receiver's shard (the task
        # closure rule), not just the receiver's own rack: multi-rack
        # tasks make a sender's aggregation traffic transit spines owned
        # by other shards, colliding same-instant local events with
        # injected cross-shard messages — the ordering case the ticket
        # scheme exists for.
        rack = draw(st.sampled_from(racks_list))
        home = plan.rank_of_rack(rack)
        receiver = draw(st.sampled_from(list(rack_hosts[rack])))
        pool = sorted(
            h
            for r in racks_list
            if plan.rank_of_rack(r) == home
            for h in rack_hosts[r]
            if h != receiver
        )
        senders = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=3, unique=True)
        )
        placement = None
        if tree:
            allowed = ["leaf"]
            task_racks = {rack} | {rack_of[s] for s in senders}
            if all(
                plan.rank_of_spine(spine_of[r]) == home for r in task_racks
            ):
                allowed += ["spine", "both"]
            placement = draw(st.sampled_from(allowed))
        tasks.append(
            ShardedTask(
                streams={s: _stream(rng, draw(st.integers(20, 60))) for s in senders},
                receiver=receiver,
                placement=placement,
                region_size=4,
            )
        )

    chaos = []
    all_hosts = [h for hosts in rack_hosts.values() for h in hosts]
    for _ in range(draw(st.integers(0, 2))):
        target = draw(st.sampled_from(all_hosts))
        # Boundary-aligned times: multiples of the cross-shard lookahead,
        # the exact timestamps a conservative window barrier lands on.
        start = draw(st.integers(1, 20)) * CORE_LATENCY_NS
        span = draw(st.integers(1, 10)) * CORE_LATENCY_NS
        kind = draw(
            st.sampled_from(["partition", "corrupt", "slow", "straggle"])
        )
        undo = {
            "partition": "heal",
            "corrupt": "cleanse",
            "slow": "revive",
            "straggle": "unstraggle",
        }[kind]
        chaos.append(ChaosAction(time_ns=start, kind=kind, target=target))
        chaos.append(ChaosAction(time_ns=start + span, kind=undo, target=target))

    fault = None
    if draw(st.booleans()):
        fault = {
            "loss_rate": 0.03,
            "duplicate_rate": 0.02,
            "reorder_rate": 0.05,
            "max_extra_delay_ns": 15_000,
            "seed": draw(st.integers(0, 10_000)),
        }
    scenario = ShardedScenario(
        config=_config(),
        tasks=tuple(tasks),
        chaos=tuple(chaos),
        fault=fault,
        corruption_rate=0.3 if chaos else None,
        # Nonzero jitter so gray windows actually consume their named
        # streams — the draws must replay identically across the cut.
        slow_jitter_ns=3_000,
        straggle_jitter_ns=2_000,
        core_latency_ns=CORE_LATENCY_NS,
        **topo_kwargs,
    )
    return scenario, plan


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(case=sharded_scenarios())
def test_serial_and_sharded_fingerprints_identical(case):
    scenario, plan = case
    serial = run_serial(scenario, plan)
    sharded, stats = run_sharded(scenario, plan)
    assert serial == sharded
    assert stats.shards == len(plan)


# ----------------------------------------------------------------------
# Deterministic anchors
# ----------------------------------------------------------------------
def test_demo_scenario_identity_with_cross_shard_traffic():
    scenario = demo_scenario()
    plan = demo_plan(scenario)
    serial = run_serial(scenario, plan)
    sharded, stats = run_sharded(scenario, plan)
    assert serial == sharded
    # The demo must genuinely exercise the cut, or it proves nothing.
    assert stats.messages > 0
    assert stats.windows > 1
    assert all(t["values_sha256"] for t in serial["tasks"].values())


def test_process_mode_matches_in_process_mode():
    scenario = demo_scenario(seed=3)
    plan = demo_plan(scenario)
    inproc, _ = run_sharded(scenario, plan, processes=False)
    forked, _ = run_sharded(scenario, plan, processes=True)
    assert inproc == forked


def test_chaos_event_exactly_on_window_boundary():
    # Lookahead == core_latency_ns, so window horizons land on multiples
    # of it; chaos at exactly such an instant must replay identically.
    scenario = demo_scenario(seed=11)
    lookahead = scenario.core_latency_ns
    boundary_chaos = tuple(
        ChaosAction(time_ns=k * lookahead, kind=kind, target="h2")
        for k, kind in ((10, "partition"), (20, "heal"), (30, "corrupt"), (40, "cleanse"))
    )
    scenario = ShardedScenario(
        config=scenario.config,
        pods=scenario.pods,
        placement=scenario.placement,
        tasks=scenario.tasks,
        chaos=boundary_chaos,
        fault=scenario.fault,
        corruption_rate=0.5,
        core_latency_ns=scenario.core_latency_ns,
    )
    plan = demo_plan(scenario)
    assert run_serial(scenario, plan) == run_sharded(scenario, plan)[0]


def test_gray_chaos_slow_and_straggle_identity():
    # Gray windows with jittered named streams: a slowed host pays
    # per-link latency draws on its own shard only, a straggling daemon's
    # service-delay draws happen where the daemon's frames are delivered
    # — the non-owning replica must see none of it, so serial and sharded
    # replay identically down to every counter.
    base = demo_scenario(seed=11)
    gray_chaos = (
        ChaosAction(time_ns=8_000, kind="slow", target="h2"),
        ChaosAction(time_ns=60_000, kind="revive", target="h2"),
        ChaosAction(time_ns=12_000, kind="straggle", target="h0"),
        ChaosAction(time_ns=80_000, kind="unstraggle", target="h0"),
    )
    scenario = ShardedScenario(
        config=base.config,
        pods=base.pods,
        placement=base.placement,
        tasks=base.tasks,
        chaos=gray_chaos,
        fault=base.fault,
        slow_multiplier=6.0,
        slow_jitter_ns=3_000,
        straggle_delay_ns=20_000,
        straggle_jitter_ns=2_000,
        core_latency_ns=base.core_latency_ns,
    )
    plan = demo_plan(scenario)
    serial = run_serial(scenario, plan)
    sharded, stats = run_sharded(scenario, plan)
    assert serial == sharded
    assert stats.messages > 0  # the gray windows ran with live cut traffic


# ----------------------------------------------------------------------
# Closure and config validation
# ----------------------------------------------------------------------
def _flat_scenario(tasks=()):
    return ShardedScenario(
        config=_config(),
        racks={"r0": ("h0", "h1"), "r1": ("h2", "h3")},
        tasks=tuple(tasks),
    )


def test_cross_shard_task_is_rejected_with_tagged_error():
    scenario = _flat_scenario(
        [ShardedTask(streams={"h0": ((b"k", 1),)}, receiver="h2")]
    )
    plan = make_plan(scenario, 2)
    with pytest.raises(TopologyError) as excinfo:
        task_homes(scenario, plan)
    assert excinfo.value.name == "h0"
    assert "control plane" in str(excinfo.value)


def test_spine_placement_needs_home_shard_spine():
    # r1's pod spine lands in shard1 under 2-way spreading while r1
    # itself stays in shard0: a spine-resident placement there would put
    # aggregation state out of the control plane's reach.
    scenario = ShardedScenario(
        config=_config(),
        pods={
            "p0": {"r0": ("h0", "h1")},
            "p1": {"r1": ("h2", "h3")},
            "p2": {"r2": ("h4", "h5")},
            "p3": {"r3": ("h6", "h7")},
        },
        placement="leaf",
        tasks=(
            ShardedTask(
                streams={"h2": ((b"k", 1),)}, receiver="h3", placement="spine"
            ),
        ),
    )
    plan = make_plan(scenario, 2, spread_spines=True)
    assert plan.rank_of_rack("r1") != plan.rank_of_spine("spine-p1")
    with pytest.raises(TopologyError) as excinfo:
        task_homes(scenario, plan)
    assert excinfo.value.name == "spine-p1"
    # The identical scenario with transit-only spines is legal.
    leaf = ShardedScenario(
        config=scenario.config,
        pods=scenario.pods,
        placement="leaf",
        tasks=(ShardedTask(streams={"h2": ((b"k", 1),)}, receiver="h3"),),
    )
    assert task_homes(leaf, plan) == [plan.rank_of_rack("r1")]


def test_submission_order_is_shard_major():
    scenario = _flat_scenario(
        [
            ShardedTask(streams={"h2": ((b"k", 1),)}, receiver="h3"),  # shard1
            ShardedTask(streams={"h0": ((b"k", 1),)}, receiver="h1"),  # shard0
        ]
    )
    plan = make_plan(scenario, 2)
    assert submission_order(scenario, plan) == [1, 0]


def test_sharded_backend_rejects_incompatible_config():
    scenario = ShardedScenario(
        config=AskConfig.small(vectorized=True),
        racks={"r0": ("h0",), "r1": ("h1",)},
    )
    plan = make_plan(scenario, 2)
    with pytest.raises(ConfigError):
        run_sharded(scenario, plan)
