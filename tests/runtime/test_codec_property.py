"""Property: pooled/slotted packets round-trip through the wire codec
byte-identically to the seed dataclass encoding.

The packet rewrite (``__slots__`` + freelist pooling + precomputed flag
predicates) must be invisible on the wire: for any packet the stack can
build, (1) ``decode(encode(p)) == p`` and re-encoding is byte-identical,
(2) a pool-acquired (freelist-reused) instance encodes to the same bytes
as a freshly constructed one, and (3) the bytes equal what the seed
dataclass implementation (``reference_mode``) produces for the same
fields."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import AskPacket, PacketFlag, Slot
from repro.runtime.codec import decode_packet, encode_packet
from repro.transport.reference import reference_mode

#: Flag combinations the stack actually emits (senders, switch, receiver).
FLAG_COMBOS = [
    PacketFlag.DATA,
    PacketFlag.DATA | PacketFlag.LONG,
    PacketFlag.DATA | PacketFlag.BYPASS,
    PacketFlag.DATA | PacketFlag.LONG | PacketFlag.BYPASS,
    PacketFlag.ACK,
    PacketFlag.FIN,
    PacketFlag.FIN | PacketFlag.BYPASS,
    PacketFlag.SWAP,
]

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)
values = st.integers(min_value=0, max_value=(1 << 64) - 1)
slots = st.lists(
    st.one_of(
        st.none(),
        st.builds(Slot, st.binary(min_size=1, max_size=16), values),
    ),
    max_size=8,
).map(tuple)


@st.composite
def packets(draw):
    return dict(
        flags=draw(st.sampled_from(FLAG_COMBOS)),
        task_id=draw(st.integers(min_value=0, max_value=(1 << 63) - 1)),
        src=draw(names),
        dst=draw(names),
        channel_index=draw(st.integers(min_value=-1, max_value=255)),
        seq=draw(st.integers(min_value=0, max_value=(1 << 40))),
        bitmap=draw(values),
        slots=draw(slots),
        ecn=draw(st.booleans()),
    )


@settings(max_examples=200, deadline=None)
@given(fields=packets())
def test_roundtrip_and_byte_identity(fields):
    packet = AskPacket(**fields)
    wire = encode_packet(packet)
    decoded = decode_packet(wire)
    assert decoded == packet
    assert encode_packet(decoded) == wire


@settings(max_examples=100, deadline=None)
@given(fields=packets())
def test_pool_acquired_packet_encodes_identically(fields):
    fresh = AskPacket(**fields)
    # Prime the freelist, then acquire: the second packet is the *same
    # re-initialized instance*, not a new allocation.
    AskPacket.pool_clear()
    AskPacket(**fields).recycle()
    assert AskPacket.pool_size() == 1
    pooled = AskPacket.acquire(**fields)
    assert AskPacket.pool_size() == 0
    assert pooled == fresh
    assert encode_packet(pooled) == encode_packet(fresh)
    # And the decode path (the codec's intended pool user) still agrees.
    assert decode_packet(encode_packet(pooled)) == fresh


@settings(max_examples=60, deadline=None)
@given(fields=packets())
def test_matches_seed_dataclass_encoding(fields):
    optimized_wire = encode_packet(AskPacket(**fields))
    with reference_mode():
        seed_wire = encode_packet(AskPacket(**fields))
    assert optimized_wire == seed_wire
