"""Property-based fuzzing of the wire codec's failure surface.

The contract under test: :func:`~repro.runtime.codec.decode_packet` either
returns a valid :class:`~repro.core.packet.AskPacket` or raises
:class:`~repro.runtime.codec.CodecError` with a tagged ``reason`` — never
``struct.error``, ``UnicodeDecodeError``, ``ValueError``, ``IndexError``
or any other leaked internal exception, for *any* byte string.  Three
attack shapes:

- truncation at every prefix length of a valid frame,
- arbitrary random byte strings (most die on magic/length),
- single-byte mutations of valid frames (the checksum catches almost all
  of them; the survivors must still decode or fail cleanly).
"""

import zlib

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.packet import AskPacket, PacketFlag, Slot
from repro.runtime.codec import (
    VERSION_LEGACY,
    CodecError,
    decode_packet,
    encode_packet,
)

#: Every reason the codec is allowed to fail with.
CODEC_REASONS = {
    "magic",
    "version",
    "flags",
    "truncated",
    "checksum",
    "malformed",
    "trailing",
}

_SLOT_KEY = st.binary(min_size=0, max_size=24)

_packets = st.builds(
    AskPacket,
    flags=st.sampled_from(
        [
            PacketFlag.DATA,
            PacketFlag.DATA | PacketFlag.LONG,
            PacketFlag.ACK,
            PacketFlag.FIN,
            PacketFlag.SWAP,
            PacketFlag.DATA | PacketFlag.BYPASS,
        ]
    ),
    task_id=st.integers(0, (1 << 48) - 1),
    src=st.sampled_from(["h0", "h1", "switch", "tor-r1"]),
    dst=st.sampled_from(["h2", "switch", "tor-r0"]),
    channel_index=st.integers(-1, 255),
    seq=st.integers(0, (1 << 40) - 1),
    bitmap=st.integers(0, (1 << 16) - 1),
    slots=st.lists(
        st.one_of(st.none(), st.builds(Slot, key=_SLOT_KEY, value=st.integers(0, 2**32))),
        max_size=6,
    ).map(tuple),
    ecn=st.booleans(),
)


def _decode_or_codec_error(data: bytes) -> None:
    """The invariant: decode succeeds or fails with a tagged CodecError."""
    try:
        decode_packet(data)
    except CodecError as exc:
        assert exc.reason in CODEC_REASONS, exc.reason
    # Any other exception type propagates and fails the test.


@settings(deadline=None)
@given(packet=_packets, data=st.data())
def test_truncation_at_every_prefix_is_clean(packet, data):
    frame = encode_packet(packet)
    cut = data.draw(st.integers(0, len(frame) - 1))
    try:
        decode_packet(frame[:cut])
    except CodecError as exc:
        assert exc.reason in CODEC_REASONS
    else:
        raise AssertionError("a strict prefix of a frame must never decode")


@settings(deadline=None)
@given(data=st.binary(min_size=0, max_size=256))
@example(b"")
@example(b"\x00" * 64)
@example(b"\xff" * 64)
def test_random_bytes_never_leak_internal_exceptions(data):
    _decode_or_codec_error(data)


@settings(deadline=None)
@given(packet=_packets, data=st.data())
def test_single_byte_mutations_are_clean(packet, data):
    frame = bytearray(encode_packet(packet))
    index = data.draw(st.integers(0, len(frame) - 1))
    value = data.draw(st.integers(0, 255).filter(lambda v: v != frame[index]))
    frame[index] = value
    _decode_or_codec_error(bytes(frame))


@settings(deadline=None)
@given(packet=_packets, data=st.data())
def test_mutated_body_behind_valid_checksum_is_clean(packet, data):
    # Resealing after the mutation defeats the CRC, so this drives random
    # damage all the way into the field parser — the adversarial case.
    frame = encode_packet(packet)
    body = bytearray(frame[:-4])
    index = data.draw(st.integers(0, len(body) - 1))
    body[index] ^= 1 << data.draw(st.integers(0, 7))
    resealed = bytes(body) + zlib.crc32(bytes(body)).to_bytes(4, "big")
    _decode_or_codec_error(resealed)


@settings(deadline=None)
@given(packet=_packets, data=st.data())
def test_legacy_v1_mutations_are_clean(packet, data):
    # v1 has no checksum, so every mutation reaches the parser directly.
    frame = bytearray(encode_packet(packet, version=VERSION_LEGACY))
    index = data.draw(st.integers(0, len(frame) - 1))
    frame[index] ^= 1 << data.draw(st.integers(0, 7))
    _decode_or_codec_error(bytes(frame))


@settings(deadline=None)
@given(packet=_packets, tail=st.binary(min_size=1, max_size=32))
def test_appended_tail_bytes_are_clean(packet, tail):
    _decode_or_codec_error(encode_packet(packet) + tail)
