"""Wire codec tests: every packet round-trips, no datagram crashes it."""

import zlib

import pytest

from repro.core.packet import (
    AskPacket,
    PacketFlag,
    Slot,
    ack_for,
    fin_packet,
    swap_packet,
)
from repro.runtime.codec import (
    MAGIC,
    VERSION_LEGACY,
    CodecError,
    decode_packet,
    encode_packet,
)


def reseal(body: bytes) -> bytes:
    """Append a fresh CRC32 trailer over ``body`` so only the *semantic*
    mutation under test reaches the decoder, not a checksum failure."""
    return body + zlib.crc32(body).to_bytes(4, "big")


def body_of(data: bytes) -> bytearray:
    """The mutable pre-trailer portion of a version-2 frame."""
    return bytearray(data[:-4])


def data_packet(**overrides):
    fields = dict(
        flags=PacketFlag.DATA,
        task_id=7,
        src="h0",
        dst="h2",
        channel_index=3,
        seq=42,
        bitmap=0b101,
        slots=(Slot(b"cat\x00\x00\x00\x00\x00", 5), None, Slot(b"dog\x00\x00\x00\x00\x00", 9)),
    )
    fields.update(overrides)
    return AskPacket(**fields)


@pytest.mark.parametrize(
    "packet",
    [
        data_packet(),
        data_packet(bitmap=0, slots=(), ecn=True),
        data_packet(flags=PacketFlag.DATA | PacketFlag.LONG, bitmap=1, slots=(Slot(b"k" * 300, 1),)),
        ack_for(data_packet(), "switch"),
        fin_packet(7, "h0", "h2", 3, 99),
        swap_packet(7, "h2", "switch", 4),
    ],
    ids=["data", "empty-ecn", "long", "ack", "fin", "swap"],
)
def test_roundtrip(packet):
    assert decode_packet(encode_packet(packet)) == packet


def test_roundtrip_preserves_derived_predicates():
    decoded = decode_packet(encode_packet(swap_packet(1, "h0", "tor-r1", 2)))
    assert decoded.is_swap and not decoded.is_data
    assert decoded.channel_index == -1
    assert decoded.channel_key == ("h0", -1)


def test_roundtrip_large_values_and_ids():
    packet = data_packet(
        task_id=(3 << 32) | 17,  # tenant-encoded id
        seq=(1 << 40),
        bitmap=(1 << 63),
        slots=tuple([None] * 63 + [Slot(b"x" * 8, (1 << 64) - 1)]),
    )
    assert decode_packet(encode_packet(packet)) == packet


def test_bad_magic_rejected():
    data = bytearray(encode_packet(data_packet()))
    data[0] ^= 0xFF
    with pytest.raises(CodecError, match="magic"):
        decode_packet(bytes(data))


def test_bad_version_rejected():
    data = bytearray(encode_packet(data_packet()))
    data[1] = 99
    with pytest.raises(CodecError, match="version"):
        decode_packet(bytes(data))


def test_truncation_rejected_at_every_length():
    data = encode_packet(data_packet())
    for cut in range(len(data)):
        with pytest.raises(CodecError):
            decode_packet(data[:cut])


def test_trailing_garbage_rejected():
    # Garbage *inside* a correctly-sealed frame is a framing error...
    body = body_of(encode_packet(data_packet()))
    with pytest.raises(CodecError, match="trailing"):
        decode_packet(reseal(bytes(body) + b"\x00"))


def test_appended_noise_fails_checksum():
    # ...while bytes appended after the trailer shift it and fail the CRC.
    data = encode_packet(data_packet())
    with pytest.raises(CodecError) as excinfo:
        decode_packet(data + b"\x00")
    assert excinfo.value.reason == "checksum"


def test_bad_presence_byte_rejected():
    packet = data_packet(slots=(Slot(b"k" * 8, 1),), bitmap=1)
    body = body_of(encode_packet(packet))
    # The presence byte of slot 0 sits right after the 2-byte slot count.
    offset = len(body) - (1 + 2 + 8 + 8)
    assert body[offset] == 1
    body[offset] = 7
    with pytest.raises(CodecError, match="presence"):
        decode_packet(reseal(bytes(body)))


def test_checksum_catches_every_single_bit_flip():
    data = encode_packet(data_packet())
    for i in range(len(data)):
        for bit in range(8):
            mutated = bytearray(data)
            mutated[i] ^= 1 << bit
            with pytest.raises(CodecError):
                decode_packet(bytes(mutated))


@pytest.mark.parametrize("version", [VERSION_LEGACY, 2])
def test_undefined_flag_bits_rejected(version):
    # Regression: IntFlag's KEEP boundary used to accept unknown bits and
    # hand the stack a flag value no dispatch path expects.
    data = encode_packet(data_packet(), version=version)
    body = bytearray(data if version == VERSION_LEGACY else data[:-4])
    body[2] |= 0x80  # a flag bit the protocol does not define
    framed = bytes(body) if version == VERSION_LEGACY else reseal(bytes(body))
    with pytest.raises(CodecError) as excinfo:
        decode_packet(framed)
    assert excinfo.value.reason == "flags"


def test_bad_ecn_byte_rejected():
    body = body_of(encode_packet(data_packet()))
    body[3] = 7
    with pytest.raises(CodecError, match="ECN"):
        decode_packet(reseal(bytes(body)))


def test_legacy_v1_frames_still_decode():
    for packet in (data_packet(), ack_for(data_packet(), "switch")):
        legacy = encode_packet(packet, version=VERSION_LEGACY)
        assert legacy[1] == VERSION_LEGACY
        # No trailer: 4 bytes shorter than the v2 frame of the same packet.
        assert len(legacy) == len(encode_packet(packet)) - 4
        assert decode_packet(legacy) == packet


def test_unknown_encode_version_rejected():
    with pytest.raises(CodecError, match="version"):
        encode_packet(data_packet(), version=3)


def test_arbitrary_noise_never_escapes_codec_error():
    import random

    rng = random.Random(0)
    for size in (0, 1, 10, 30, 100):
        for _ in range(50):
            noise = bytes(rng.randrange(256) for _ in range(size))
            try:
                decode_packet(noise)
            except CodecError:
                pass  # the only acceptable failure mode


def test_noise_behind_valid_magic_never_escapes_codec_error():
    import random

    rng = random.Random(1)
    for _ in range(200):
        noise = bytes([MAGIC, 1]) + bytes(
            rng.randrange(256) for _ in range(rng.randrange(60))
        )
        try:
            decode_packet(noise)
        except CodecError:
            pass


def test_oversized_names_rejected_on_encode():
    with pytest.raises(CodecError, match="name"):
        encode_packet(data_packet(src="h" * 256))


def test_oversized_key_rejected_on_encode():
    packet = data_packet(slots=(Slot(b"k" * 70000, 1),), bitmap=1)
    with pytest.raises(CodecError, match="key"):
        encode_packet(packet)


# ---------------------------------------------------------------------------
# Batch container framing (the vectorized wire path)
# ---------------------------------------------------------------------------


def _sample_packets():
    return [
        AskPacket(
            PacketFlag.DATA,
            1,
            "h0",
            "h1",
            0,
            seq,
            bitmap=0b11,
            slots=(Slot(b"key\x80", seq + 1), Slot(b"oth\x80", 7)),
        )
        for seq in range(5)
    ] + [
        ack_for(
            AskPacket(PacketFlag.DATA, 1, "h0", "h1", 0, 9, bitmap=0, slots=()),
            "switch",
        ),
        fin_packet(1, "h0", "h1", 0, seq=10),
        swap_packet(1, "h1", "switch", epoch=3),
    ]


def test_batch_container_round_trips():
    from repro.runtime.codec import decode_packet_batch, encode_packet_batch

    packets = _sample_packets()
    buffer = encode_packet_batch(packets)
    assert decode_packet_batch(buffer) == packets
    assert decode_packet_batch(encode_packet_batch([])) == []


def test_batch_frames_are_zero_copy_views():
    from repro.runtime.codec import encode_packet_batch, iter_packet_frames

    packets = _sample_packets()
    buffer = encode_packet_batch(packets)
    frames = iter_packet_frames(buffer)
    assert len(frames) == len(packets)
    for frame in frames:
        assert isinstance(frame, memoryview)
        # The views alias the container buffer — splitting copies nothing.
        assert frame.obj is buffer
    # Each frame is an ordinary scalar datagram.
    assert decode_packet(bytes(frames[0])) == packets[0]


def test_batch_members_keep_per_frame_integrity():
    """Corrupting one member must reject that frame only — the rest of
    the batch still decodes (loss stays per-packet, like the wire)."""
    from repro.runtime.codec import encode_packet_batch, iter_packet_frames

    packets = _sample_packets()
    buffer = bytearray(encode_packet_batch(packets))
    frames = iter_packet_frames(bytes(buffer))
    # Flip one byte inside the LAST frame's payload region.
    tail_start = len(buffer) - len(frames[-1])
    buffer[tail_start + 10] ^= 0xFF
    frames = iter_packet_frames(bytes(buffer))
    decoded, rejected = [], 0
    for frame in frames:
        try:
            decoded.append(decode_packet(bytes(frame)))
        except CodecError as exc:
            rejected += 1
            assert exc.reason == "checksum"
    assert rejected == 1
    assert decoded == packets[:-1]


def test_batch_container_truncations_raise_codec_errors():
    from repro.runtime.codec import encode_packet_batch, iter_packet_frames

    buffer = encode_packet_batch(_sample_packets())
    with pytest.raises(CodecError) as excinfo:
        iter_packet_frames(buffer[:2])  # inside the count header
    assert excinfo.value.reason == "truncated"
    with pytest.raises(CodecError) as excinfo:
        iter_packet_frames(buffer[:6])  # inside a frame-length prefix
    assert excinfo.value.reason == "truncated"
    with pytest.raises(CodecError) as excinfo:
        iter_packet_frames(buffer[:-3])  # last frame overruns
    assert excinfo.value.reason == "truncated"
    with pytest.raises(CodecError, match="trailing"):
        iter_packet_frames(buffer + b"\x00")


def test_batch_legacy_version_frames():
    from repro.runtime.codec import decode_packet_batch, encode_packet_batch

    packets = _sample_packets()
    buffer = encode_packet_batch(packets, version=VERSION_LEGACY)
    assert decode_packet_batch(buffer) == packets
    # Legacy frames carry no CRC trailer, so the batch is smaller.
    assert len(buffer) < len(encode_packet_batch(packets))
