"""The asyncio backend: real localhost UDP under the unchanged protocol.

These tests move actual datagrams between sockets, so they use the
2 ms retransmission timeout (the paper's 100 µs is calibrated against
simulated links, not Python wall-clock scheduling).
"""

import dataclasses

import pytest

from repro.core.config import AskConfig
from repro.core.results import reference_aggregate
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.runtime import AsyncioFabric


def realtime_config(**overrides):
    return dataclasses.replace(
        AskConfig.small(), retransmit_timeout_us=2000, **overrides
    )


def test_exactly_once_over_real_udp_with_loss():
    """The acceptance bar: end-to-end exact aggregation across real
    localhost UDP sockets while the fabric injects loss and duplication —
    the reliability layer heals everything, no tuple lost or doubled."""
    service = AskService(
        realtime_config(),
        hosts=3,
        fault=FaultModel(loss_rate=0.08, duplicate_rate=0.05, seed=11),
        backend="asyncio",
    )
    try:
        streams = {
            "h0": [(b"key%d" % (i % 9), i + 1) for i in range(300)],
            "h1": [(b"key%d" % (i % 6), 2 * i) for i in range(300)],
        }
        result = service.aggregate(streams, receiver="h2")
        expected = reference_aggregate(
            {h: list(s) for h, s in streams.items()}, service.config.value_mask
        )
        assert result.values == expected
        assert service.fabric.frames_dropped > 0  # loss actually happened
        assert result.stats.retransmissions >= service.fabric.frames_dropped - 2
    finally:
        service.close()


def test_clean_fabric_runs_without_retransmissions_mattering():
    service = AskService(realtime_config(), hosts=2, backend="asyncio")
    try:
        result = service.aggregate({"h0": [(b"cat", 1), (b"cat", 2)]}, receiver="h1")
        assert result.values == {b"cat": 3}
        assert service.fabric.frames_dropped == 0
    finally:
        service.close()


def test_streaming_session_on_udp():
    service = AskService(realtime_config(), hosts=2, backend="asyncio")
    try:
        session = service.open_stream(["h0"], receiver="h1")
        session.feed("h0", [(b"cpu", 97)])
        service.run()  # one wall-clock slice delivers what's in flight
        session.feed("h0", [(b"cpu", 3)])
        session.close()
        service.run_to_completion(timeout_s=20.0)
        assert session.result is not None
        assert session.result[b"cpu"] == 100
    finally:
        service.close()


def test_ports_are_distinct_and_real():
    service = AskService(realtime_config(), hosts=3, backend="asyncio")
    try:
        service.fabric.start()
        names = [service.switch.name, *service.hosts]
        ports = [service.fabric.port_of(n) for n in names]
        assert all(isinstance(p, int) and p > 0 for p in ports)
        assert len(set(ports)) == len(ports)  # one socket per node
    finally:
        service.close()


def test_sim_only_surfaces_raise_on_asyncio():
    service = AskService(realtime_config(), hosts=2, backend="asyncio")
    try:
        with pytest.raises(AttributeError, match="simulator"):
            service.sim
        with pytest.raises(AttributeError, match="topology"):
            service.topology
    finally:
        service.close()


def test_stray_datagrams_are_counted_not_fatal():
    """A foreign UDP sender cannot crash a serving rack (§3.3 robustness:
    malformed frames are counted and dropped at the codec)."""
    import socket

    service = AskService(realtime_config(), hosts=2, backend="asyncio")
    try:
        service.fabric.start()
        port = service.fabric.port_of("h0")
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
            sock.sendto(b"not an ask frame", ("127.0.0.1", port))
            sock.sendto(b"", ("127.0.0.1", port))
        service.run()  # drain one slice
        assert service.fabric.malformed_frames == 2
        result = service.aggregate({"h0": [(b"ok", 1)]}, receiver="h1")
        assert result.values == {b"ok": 1}
    finally:
        service.close()


def test_empty_and_truncated_datagrams_count_per_reason_drops():
    """An empty datagram, a truncated header and a corrupt trailer must
    each be counted under their codec reason at the receiving node — and
    none of them may raise out of ``datagram_received``."""
    import zlib

    from repro.core.packet import AskPacket, PacketFlag
    from repro.core.robustness import RobustnessCounters
    from repro.runtime.asyncio_fabric import _NodeEndpoint
    from repro.runtime.codec import encode_packet

    class FabricStub:
        malformed_frames = 0
        trace = None

    class NodeStub:
        name = "h0"
        robustness = RobustnessCounters()

    endpoint = _NodeEndpoint(FabricStub(), NodeStub())
    addr = ("127.0.0.1", 9)
    frame = encode_packet(
        AskPacket(PacketFlag.DATA, 1, "h0", "h1", 0, 0, bitmap=0, slots=())
    )
    endpoint.datagram_received(b"", addr)  # empty: shorter than the header
    endpoint.datagram_received(frame[:5], addr)  # truncated mid-header
    corrupt = frame[:-1] + bytes([frame[-1] ^ 0xFF])  # CRC trailer broken
    endpoint.datagram_received(corrupt, addr)
    endpoint.datagram_received(b"\x00" + frame[1:], addr)  # wrong magic
    counters = NodeStub.robustness
    assert counters.get("truncated") == 2
    assert counters.get("checksum") == 1
    assert counters.get("magic") == 1
    assert endpoint.fabric.malformed_frames == 4
    assert endpoint.queue.qsize() == 0  # nothing reached the node
    endpoint.datagram_received(frame, addr)  # a good frame still decodes
    assert endpoint.queue.qsize() == 1


def test_attach_after_start_rejected():
    fabric = AsyncioFabric()

    class Node:
        def __init__(self, name):
            self.name = name

        def receive(self, packet):
            pass

    try:
        fabric.install_switch(Node("switch"))
        fabric.attach_host(Node("h0"))
        fabric.start()
        with pytest.raises(RuntimeError, match="started"):
            fabric.attach_host(Node("h1"))
    finally:
        fabric.close()


def test_duplicate_names_rejected():
    fabric = AsyncioFabric()

    class Node:
        name = "h0"

        def receive(self, packet):
            pass

    try:
        fabric.attach_host(Node())
        with pytest.raises(ValueError, match="already"):
            fabric.attach_host(Node())
    finally:
        fabric.close()


def test_close_is_idempotent():
    service = AskService(realtime_config(), hosts=2, backend="asyncio")
    service.aggregate({"h0": [(b"x", 1)]}, receiver="h1")
    service.close()
    service.close()


def test_context_manager_closes():
    with AskService(realtime_config(), hosts=2, backend="asyncio") as service:
        result = service.aggregate({"h0": [(b"x", 5)]}, receiver="h1")
        assert result.values == {b"x": 5}
    assert service.fabric._closed


def test_run_until_timeout_raises_with_pending_counts():
    """A wedged run must fail loudly, not hang: run_until raises
    FabricTimeoutError naming the budget and carrying a per-node snapshot
    of in-flight work so the operator can see who is stuck."""
    from repro.runtime import FabricTimeoutError  # lazy re-export

    service = AskService(realtime_config(), hosts=2, backend="asyncio")
    try:
        service.fabric.start()
        with pytest.raises(FabricTimeoutError) as excinfo:
            service.runner.run_until(lambda: False, timeout_s=0.05)
        assert "still busy" in str(excinfo.value)
        assert isinstance(excinfo.value.pending, dict)
    finally:
        service.close()
