"""Tests for the PISA pipeline resource model."""

import pytest

from repro.switch.pisa import Pipeline, PipelineBudgetError
from repro.switch.registers import RegisterArray


def _array(name, size=16, width=32):
    return RegisterArray(name, size, width)


def test_stage_holds_at_most_four_arrays():
    pipeline = Pipeline()
    for i in range(4):
        pipeline.declare(0, _array(f"a{i}"))
    with pytest.raises(PipelineBudgetError):
        pipeline.declare(0, _array("a4"))


def test_stage_sram_budget_enforced():
    pipeline = Pipeline(sram_per_stage_bytes=100)
    pipeline.declare(0, _array("ok", size=16, width=32))  # 64 B
    with pytest.raises(PipelineBudgetError):
        pipeline.declare(0, _array("too-big", size=16, width=32))


def test_stage_count_bounded():
    pipeline = Pipeline(max_stages=2)
    pipeline.stage(1)
    with pytest.raises(PipelineBudgetError):
        pipeline.stage(2)


def test_declare_assigns_stage_index():
    pipeline = Pipeline()
    array = pipeline.declare(3, _array("x"))
    assert array.stage_index == 3


def test_declare_spread_fills_stages_in_order():
    pipeline = Pipeline()
    arrays = [_array(f"aa{i}") for i in range(10)]
    next_free = pipeline.declare_spread(1, arrays)
    assert [a.stage_index for a in arrays] == [1, 1, 1, 1, 2, 2, 2, 2, 3, 3]
    assert next_free == 4


def test_declare_spread_keeps_adjacent_pairs_physically_adjacent():
    # Medium groups need their m arrays in the same or adjacent stages.
    pipeline = Pipeline()
    arrays = [_array(f"aa{i}") for i in range(16)]
    pipeline.declare_spread(0, arrays)
    for first, second in zip(arrays, arrays[1:]):
        assert second.stage_index - first.stage_index in (0, 1)


def test_sram_used_totals():
    pipeline = Pipeline()
    pipeline.declare(0, _array("a", size=8, width=64))  # 64 B
    pipeline.declare(1, _array("b", size=8, width=64))
    assert pipeline.sram_used_bytes == 128


def test_lazy_stage_creation():
    pipeline = Pipeline()
    pipeline.stage(5)
    assert pipeline.num_stages_used == 6


def test_summary_mentions_every_array():
    pipeline = Pipeline()
    pipeline.declare(0, _array("seen"))
    pipeline.declare(1, _array("AA0"))
    text = pipeline.summary()
    assert "seen" in text and "AA0" in text


def test_begin_pass_counts_passes():
    pipeline = Pipeline()
    pipeline.begin_pass()
    pipeline.begin_pass()
    assert pipeline.passes == 2
