"""Fuzzing the switch program with arbitrary valid packets.

Invariants that must hold for *any* packet the host stack can construct:
no exception escapes the pipeline, PISA access rules are never violated
(they would raise), every emitted packet is well-formed, and tuples are
conserved (absorbed into switch memory or still live in the forwarded
bitmap — never duplicated, never dropped silently).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.packer import pack_stream
from repro.core.packet import AskPacket, PacketFlag, fin_packet
from repro.net.simulator import Simulator
from repro.switch.program import SwitchAction
from repro.switch.switch import AskSwitch


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 100_000),
    region_size=st.sampled_from([1, 2, 8, 32]),
    num_packets=st.integers(1, 30),
    dup_prob=st.floats(0, 0.5),
)
def test_program_invariants_under_arbitrary_traffic(
    seed, region_size, num_packets, dup_prob
):
    rng = random.Random(seed)
    cfg = AskConfig.small(window_size=8)
    switch = AskSwitch(cfg, Simulator(), max_tasks=4, max_channels=8)
    switch.controller.allocate_region(1, size=region_size)

    # Build a legal packet sequence: windowed seqs, short/medium/long keys,
    # occasional FINs, random in-window duplicates.
    keys = [
        rng.choice(
            [
                ("s%02d" % rng.randint(0, 20)).encode(),
                ("medum%02d" % rng.randint(0, 20)).encode(),
                ("long-key-%06d" % rng.randint(0, 20)).encode(),
            ]
        )
        for _ in range(40)
    ]
    packets = []
    seq = 0
    for _ in range(num_packets):
        if rng.random() < 0.1:
            packets.append(fin_packet(1, "h0", "h1", 0, seq))
        else:
            tuples = [(rng.choice(keys), rng.randint(0, 2**31)) for _ in range(3)]
            payloads, _ = pack_stream(tuples, cfg)
            payload = payloads[0]
            flags = PacketFlag.DATA | (
                PacketFlag.LONG if payload.is_long else PacketFlag(0)
            )
            packets.append(
                AskPacket(flags, 1, "h0", "h1", 0, seq,
                          bitmap=payload.bitmap, slots=payload.slots)
            )
        seq += 1

    absorbed_value = 0
    forwarded_value = 0
    sent_value = 0
    seen_seqs = set()
    schedule = []
    for pkt in packets:
        schedule.append(pkt)
        if rng.random() < dup_prob:
            schedule.append(pkt)  # immediate duplicate (still in window)

    for pkt in schedule:
        first_time = pkt.seq not in seen_seqs
        seen_seqs.add(pkt.seq)
        if first_time and pkt.is_data:
            sent_value += sum(s.value for s in pkt.slots if s is not None)
        decision = switch.program.process(switch.pipeline.begin_pass(), pkt)
        for emitted in decision.emit:
            if emitted.is_ack:
                assert emitted.dst == "h0"
                assert emitted.seq == pkt.seq
            else:
                assert emitted.dst == "h1"
                # A forwarded packet's live bits always index real slots.
                emitted.live_slots()
                if first_time and emitted.is_data and not emitted.is_fin:
                    forwarded_value += _live_value(emitted)
        if decision.action is SwitchAction.DROP:
            assert not decision.emit

    absorbed_value = sum(
        v for part in (0, 1) for v in switch.controller.fetch_and_reset(1, part).values()
    )
    # Conservation: every first-transmission value is either in switch
    # memory or was forwarded onward (modulo 32-bit wraparound).
    mask = cfg.value_mask
    assert (absorbed_value + forwarded_value) & mask == sent_value & mask


def _live_value(pkt):
    from repro.core.keyspace import KeySpaceLayout

    layout = KeySpaceLayout(AskConfig.small(window_size=8))
    total = 0
    if pkt.is_long:
        return sum(slot.value for _i, slot in pkt.live_slots())
    for index in range(layout.num_short_slots):
        if pkt.bitmap >> index & 1:
            total += pkt.slots[index].value
    for group in range(layout.num_groups):
        slots = layout.group_slots(group)
        if pkt.bitmap >> slots[0] & 1:
            total += pkt.slots[slots[-1]].value
    return total
