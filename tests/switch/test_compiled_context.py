"""The compiled fast path keeps the PISA discipline (§2.2.1, §3.2.1).

The optimized pipeline reuses one epoch-counter :class:`PassContext` for
every packet and runs install-time-compiled :class:`ChannelProgram`s, so
these tests pin the properties the fast path must not lose: the
one-access-per-pass rule, the stage-order rule, decision-identity with the
generic ``DedupUnit`` entry points, and the relaxed 2W-bit ``seen``
ablation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.switch.dedup import (
    CHECK_FRESH,
    CHECK_OBSERVED,
    CHECK_STALE,
    DedupUnit,
)
from repro.switch.pisa import Pipeline
from repro.switch.registers import PassContext, RegisterAccessError, RegisterArray


def _unit(window=8, compact=True, channels=4, num_aas=8):
    cfg = AskConfig.small(window_size=window, use_compact_seen=compact, num_aas=num_aas)
    return DedupUnit(cfg, max_channels=channels)


# ----------------------------------------------------------------------
# Epoch-counter PassContext
# ----------------------------------------------------------------------
def test_second_same_pass_access_raises_on_reused_context():
    array = RegisterArray("a", size=4, width_bits=32)
    ctx = PassContext()
    array.read(ctx, 0)
    with pytest.raises(RegisterAccessError):
        array.read(ctx, 0)
    with pytest.raises(RegisterAccessError):
        array.write(ctx, 1, 9)  # any op on any index, same pass


def test_reset_reopens_every_array_in_o1():
    arrays = [RegisterArray(f"a{i}", size=2, width_bits=8) for i in range(3)]
    ctx = PassContext()
    for array in arrays:
        array.write(ctx, 0, 1)
    ctx.reset()
    # No per-array clearing happened, yet every stamp is invalid now.
    for array in arrays:
        assert array.read(ctx.reset(), 0) == 1


def test_reused_context_polices_every_specialized_op():
    ctx = PassContext()
    for op in ("read", "write", "set_bit", "clr_bitc", "rmw_max"):
        array = RegisterArray("bits", size=4, width_bits=32)
        ctx.reset()
        args = {
            "read": (0,),
            "write": (0, 1),
            "set_bit": (0,),
            "clr_bitc": (0,),
            "rmw_max": (0, 5),
        }[op]
        getattr(array, op)(ctx, *args)
        with pytest.raises(RegisterAccessError):
            getattr(array, op)(ctx, *args)


def test_fresh_one_shot_contexts_still_work():
    # The identity half of the (context, pass id) stamp can never match a
    # context the array has not seen, whatever its pass id happens to be.
    array = RegisterArray("a", size=1, width_bits=8)
    for _ in range(3):
        array.read(PassContext(), 0)


def test_stage_order_violation_detected_with_reused_context():
    pipeline = Pipeline(max_stages=4)
    early = RegisterArray("early", size=1, width_bits=8)
    late = RegisterArray("late", size=1, width_bits=8)
    pipeline.stage(0).add_array(early)
    pipeline.stage(2).add_array(late)
    ctx = PassContext()
    late.read(ctx, 0)
    with pytest.raises(RegisterAccessError):
        early.read(ctx, 0)  # a packet cannot flow backwards
    # The next pass through the same context starts at the front again.
    ctx.reset()
    early.read(ctx, 0)
    late.read(ctx, 0)


# ----------------------------------------------------------------------
# Compiled channel programs
# ----------------------------------------------------------------------
def test_compiled_check_consumes_the_single_seen_access():
    unit = _unit(compact=True)
    program = unit.compile_channel(0)
    ctx = PassContext()
    assert program.check(ctx, 0) == CHECK_FRESH
    with pytest.raises(RegisterAccessError):
        unit.seen.read(ctx, 0)


def test_compiled_program_codes_match_generic_verdicts():
    unit = _unit(window=8, channels=1)
    oracle = _unit(window=8, channels=1)
    program = unit.compile_channel(0)
    ctx = PassContext()
    arrivals = [0, 1, 2, 0, 3, 20, 13, 12, 20]
    for seq in arrivals:
        code = program.check(ctx.reset(), seq)
        verdict = oracle.check(PassContext(), 0, seq)
        if verdict.stale:
            assert code == CHECK_STALE
        elif verdict.observed:
            assert code == CHECK_OBSERVED
        else:
            assert code == CHECK_FRESH
    assert unit.duplicates_detected == oracle.duplicates_detected
    assert unit.stale_drops == oracle.stale_drops


def test_compiled_bitmap_roundtrip_isolated_per_channel():
    unit = _unit(window=8, channels=2)
    p0, p1 = unit.compile_channel(0), unit.compile_channel(1)
    ctx = PassContext()
    p0.record_bitmap(ctx.reset(), 3, 0b11)
    p1.record_bitmap(ctx.reset(), 3, 0b01)
    assert p0.load_bitmap(ctx.reset(), 3) == 0b11
    assert p1.load_bitmap(ctx.reset(), 3) == 0b01


def test_compile_channel_slot_bounds_checked():
    unit = _unit(channels=2)
    with pytest.raises(IndexError):
        unit.compile_channel(2)
    with pytest.raises(IndexError):
        unit.compile_channel(-1)


def test_relaxed_2w_ablation_through_compiled_program():
    """The conceptual 2W-bit ``seen`` (Eqs. 5–7) needs three register
    accesses per pass, which only a relaxed array allows — and the compiled
    program preserves exactly that behaviour."""
    unit = _unit(window=4, compact=False, channels=1)
    assert unit.seen.relax_access_limit
    program = unit.compile_channel(0)
    ctx = PassContext()
    for seq in range(16):  # wraps the 2W ring twice, never falsely observed
        assert program.check(ctx.reset(), seq) == CHECK_FRESH
    assert program.check(ctx.reset(), 15) == CHECK_OBSERVED
    assert unit.duplicates_detected == 1


@settings(max_examples=150, deadline=None)
@given(
    data=st.data(),
    window=st.sampled_from([2, 4, 8]),
    compact=st.booleans(),
)
def test_compiled_program_equals_generic_check_for_reachable_arrivals(
    data, window, compact
):
    """Decision-identity between the compiled program (reused epoch context)
    and the generic ``DedupUnit.check`` (fresh context per packet), over the
    arrival space the integrated system can generate."""
    unit = _unit(window=window, compact=compact, channels=1)
    oracle = _unit(window=window, compact=compact, channels=1)
    program = unit.compile_channel(0)
    ctx = PassContext()
    next_new = 0
    for _ in range(60):
        seq = data.draw(st.integers(min_value=0, max_value=next_new + window - 1))
        if seq == next_new:
            next_new += 1
        code = program.check(ctx.reset(), seq)
        verdict = oracle.check(PassContext(), 0, seq)
        expected = (
            CHECK_STALE
            if verdict.stale
            else CHECK_OBSERVED
            if verdict.observed
            else CHECK_FRESH
        )
        assert code == expected
