"""Tests for aggregator arrays and the coalesced group scheme."""

import pytest

from repro.core.config import AskConfig
from repro.switch.aggregator import AggregatorArray, AggregatorPool
from repro.switch.pisa import Pipeline
from repro.switch.registers import PassContext


def _aa(size=16):
    return AggregatorArray("AA0", size, key_bits=32, value_bits=32)


def test_blank_cell_is_claimed():
    aa = _aa()
    outcome = aa.try_aggregate(PassContext(), 3, b"key1", 5)
    assert outcome.success and outcome.reserved
    assert aa.control_cell(3) == (b"key1", 5)


def test_matching_key_accumulates():
    aa = _aa()
    aa.try_aggregate(PassContext(), 3, b"key1", 5)
    outcome = aa.try_aggregate(PassContext(), 3, b"key1", 7)
    assert outcome.success and not outcome.reserved
    assert aa.control_cell(3) == (b"key1", 12)


def test_mismatched_key_fails_without_mutation():
    aa = _aa()
    aa.try_aggregate(PassContext(), 3, b"key1", 5)
    outcome = aa.try_aggregate(PassContext(), 3, b"key2", 7)
    assert not outcome.success
    assert aa.control_cell(3) == (b"key1", 5)


def test_value_wraps_at_register_width():
    aa = _aa()
    aa.try_aggregate(PassContext(), 0, b"k", 0xFFFFFFFF)
    aa.try_aggregate(PassContext(), 0, b"k", 2)
    assert aa.control_cell(0) == (b"k", 1)  # modulo 2^32


def test_disabled_access_touches_but_does_not_mutate():
    aa = _aa()
    ctx = PassContext()
    outcome = aa.try_aggregate(ctx, 0, b"k", 5, enabled=False)
    assert not outcome.success
    assert aa.control_cell(0) == (None, 0)
    # The register array was still accessed once this pass (predicated no-op).
    with pytest.raises(Exception):
        aa.try_aggregate(ctx, 1, b"k", 5)


def test_none_add_value_reserves_with_zero():
    aa = _aa()
    aa.try_aggregate(PassContext(), 0, b"seg", None)
    assert aa.control_cell(0) == (b"seg", 0)


def test_occupied_in_range():
    aa = _aa()
    aa.try_aggregate(PassContext(), 1, b"a", 1)
    aa.try_aggregate(PassContext(), 5, b"b", 1)
    assert aa.occupied_in(0, 8) == 2
    assert aa.occupied_in(2, 8) == 1


class TestPool:
    def _pool(self, config=None):
        cfg = config or AskConfig(
            num_aas=4,
            aggregators_per_aa=16,
            medium_key_groups=1,
            medium_group_width=2,
            shadow_copy=False,
        )
        return cfg, AggregatorPool(cfg, Pipeline(max_stages=32), first_stage=0)

    def test_pool_builds_one_aa_per_slot(self):
        cfg, pool = self._pool()
        assert len(pool) == 4
        assert all(pool[i].size == 16 for i in range(4))

    def test_short_aggregation_counts_stats(self):
        cfg, pool = self._pool()
        assert pool.aggregate_short(PassContext(), 0, 2, b"k\x80\x00\x00"[:4], 1)
        assert pool.tuples_aggregated == 1
        assert pool.aggregators_reserved == 1

    def test_group_all_or_nothing_on_blank_row(self):
        cfg, pool = self._pool()
        ok = pool.aggregate_group(PassContext(), (2, 3), 5, (b"your", b"s\x80\x00\x00"), 9)
        assert ok
        assert pool[2].control_cell(5) == (b"your", 0)
        assert pool[3].control_cell(5) == (b"s\x80\x00\x00", 9)

    def test_group_mismatch_leaves_row_untouched(self):
        cfg, pool = self._pool()
        pool.aggregate_group(PassContext(), (2, 3), 5, (b"your", b"s\x80\x00\x00"), 9)
        ok = pool.aggregate_group(PassContext(), (2, 3), 5, (b"your", b"self"), 3)
        assert not ok
        # The matching prefix segment must not be corrupted (the X1Y2 case).
        assert pool[2].control_cell(5) == (b"your", 0)
        assert pool[3].control_cell(5) == (b"s\x80\x00\x00", 9)
        assert pool.tuples_failed == 1

    def test_group_match_accumulates_value_in_last_slot(self):
        cfg, pool = self._pool()
        pool.aggregate_group(PassContext(), (2, 3), 5, (b"your", b"s\x80\x00\x00"), 9)
        pool.aggregate_group(PassContext(), (2, 3), 5, (b"your", b"s\x80\x00\x00"), 4)
        assert pool[3].control_cell(5)[1] == 13
        assert pool[2].control_cell(5)[1] == 0

    def test_group_segment_count_must_match_width(self):
        cfg, pool = self._pool()
        with pytest.raises(ValueError):
            pool.aggregate_group(PassContext(), (2, 3), 0, (b"only-one",), 1)

    def test_pool_occupancy_fraction(self):
        cfg, pool = self._pool()
        pool.aggregate_short(PassContext(), 0, 0, b"aaaa", 1)
        assert pool.occupancy(0, 16) == pytest.approx(1 / 64)

    def test_pool_respects_stage_budget_of_four_per_stage(self):
        cfg = AskConfig(
            num_aas=8,
            aggregators_per_aa=16,
            medium_key_groups=2,
            medium_group_width=2,
            shadow_copy=False,
        )
        pipeline = Pipeline(max_stages=32)
        pool = AggregatorPool(cfg, pipeline, first_stage=0)
        stages = [aa.registers.stage_index for aa in pool.arrays]
        assert stages == [0, 0, 0, 0, 1, 1, 1, 1]
