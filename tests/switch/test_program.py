"""Tests for the ASK switch program (the per-packet pass)."""

import pytest

from repro.core.config import AskConfig
from repro.core.errors import ProtocolError
from repro.core.packer import pack_stream
from repro.core.packet import AskPacket, PacketFlag, fin_packet, swap_packet
from repro.net.simulator import Simulator
from repro.switch.program import SwitchAction
from repro.switch.switch import AskSwitch


def _switch(config=None):
    cfg = config or AskConfig.small(shadow_copy=True)
    switch = AskSwitch(cfg, Simulator(), max_tasks=4, max_channels=8)
    return cfg, switch


def _data_packet(cfg, tuples, seq=0, task=1, src="h0", dst="h1", channel=0):
    payloads, _ = pack_stream(tuples, cfg)
    assert len(payloads) == 1, "test tuples must fit one packet"
    payload = payloads[0]
    flags = PacketFlag.DATA | (PacketFlag.LONG if payload.is_long else PacketFlag(0))
    return AskPacket(
        flags=flags,
        task_id=task,
        src=src,
        dst=dst,
        channel_index=channel,
        seq=seq,
        bitmap=payload.bitmap,
        slots=payload.slots,
    )


def _process(switch, pkt):
    ctx = switch.pipeline.begin_pass()
    return switch.program.process(ctx, pkt)


def test_fully_aggregated_packet_acked_to_sender():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    pkt = _data_packet(cfg, [(b"cat", 2)])
    decision = _process(switch, pkt)
    assert decision.action is SwitchAction.ACK
    (ack,) = decision.emit
    assert ack.is_ack and ack.dst == "h0" and ack.seq == pkt.seq


def test_collision_forwards_remaining_tuples():
    cfg, switch = _switch()
    switch.controller.allocate_region(1, size=1)  # one aggregator per AA: easy collisions
    # Two different keys in the same subspace slot collide at region size 1.
    from repro.core.keyspace import KeySpaceLayout

    layout = KeySpaceLayout(cfg)
    keys = {}
    word = 0
    while not any(len(v) >= 2 for v in keys.values()):
        key = ("%04d" % word).encode()
        word += 1
        slot = layout.assign(key).primary_slot
        keys.setdefault(slot, []).append(key)
    pair = next(v for v in keys.values() if len(v) >= 2)
    first = _data_packet(cfg, [(pair[0], 1)], seq=0)
    second = _data_packet(cfg, [(pair[1], 1)], seq=1)
    assert _process(switch, first).action is SwitchAction.ACK
    decision = _process(switch, second)
    assert decision.action is SwitchAction.FORWARD
    (fwd,) = decision.emit
    assert fwd.bitmap == second.bitmap  # nothing aggregated
    assert fwd.dst == "h1"


def test_retransmitted_fully_aggregated_packet_not_reaggregated():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    pkt = _data_packet(cfg, [(b"cat", 2)])
    _process(switch, pkt)
    decision = _process(switch, pkt)  # duplicate
    assert decision.action is SwitchAction.ACK
    # Value must be 2, not 4.
    fetched = switch.controller.fetch_and_reset(1, part=0)
    assert fetched == {b"cat": 2}


def test_retransmitted_partial_packet_carries_recorded_bitmap():
    cfg, switch = _switch()
    switch.controller.allocate_region(1, size=1)
    from repro.core.keyspace import KeySpaceLayout

    layout = KeySpaceLayout(cfg)
    # Find two short keys in the same slot (they collide at size-1 regions)
    # and one in a different slot.
    by_slot = {}
    word = 0
    while True:
        key = ("%04d" % word).encode()
        word += 1
        slot = layout.assign(key).primary_slot
        by_slot.setdefault(slot, []).append(key)
        pairs = [s for s, v in by_slot.items() if len(v) >= 2]
        others = [s for s in by_slot if s not in pairs]
        if pairs and others:
            break
    colliding_slot = pairs[0]
    other_slot = others[0]
    k1, k2 = by_slot[colliding_slot][:2]
    k3 = by_slot[other_slot][0]
    _process(switch, _data_packet(cfg, [(k1, 1)], seq=0))
    partial = _data_packet(cfg, [(k2, 1), (k3, 1)], seq=1)
    first = _process(switch, partial)
    assert first.action is SwitchAction.FORWARD
    forwarded_bitmap = first.emit[0].bitmap
    # Retransmission must carry exactly the recorded (post-aggregation)
    # bitmap — k3 was consumed, k2 was not (Eq. 10).
    retry = _process(switch, partial)
    assert retry.action is SwitchAction.FORWARD
    assert retry.emit[0].bitmap == forwarded_bitmap
    assert forwarded_bitmap != partial.bitmap


def test_stale_packet_dropped_silently():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    w = cfg.window_size
    _process(switch, _data_packet(cfg, [(b"a", 1)], seq=3 * w))
    decision = _process(switch, _data_packet(cfg, [(b"b", 1)], seq=2 * w - 1))
    assert decision.action is SwitchAction.DROP
    assert decision.emit == []


def test_fin_always_forwarded_and_deduped_at_receiver_not_switch():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    fin = fin_packet(1, "h0", "h1", 0, seq=0)
    first = _process(switch, fin)
    second = _process(switch, fin)
    assert first.action is SwitchAction.FORWARD
    assert second.action is SwitchAction.FORWARD


def test_long_packet_bypasses_aggregation():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    long_key = b"x" * (cfg.medium_key_bytes + 3)
    pkt = _data_packet(cfg, [(long_key, 5)])
    assert pkt.is_long
    decision = _process(switch, pkt)
    assert decision.action is SwitchAction.FORWARD
    assert decision.emit[0].bitmap == pkt.bitmap
    assert switch.controller.fetch_and_reset(1, part=0) == {}


def test_swap_packet_flips_indicator_and_acks():
    cfg, switch = _switch()
    region = switch.controller.allocate_region(1)
    swap = swap_packet(1, "h1", "switch", epoch=1)
    decision = _process(switch, swap)
    assert decision.action is SwitchAction.ACK
    assert decision.emit[0].seq == 1
    ctx = switch.pipeline.begin_pass()
    assert switch.shadow.write_part(ctx, region.task_slot) == 1


def test_data_after_swap_lands_in_other_copy():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    _process(switch, _data_packet(cfg, [(b"cat", 1)], seq=0))
    _process(switch, swap_packet(1, "h1", "switch", epoch=1))
    _process(switch, _data_packet(cfg, [(b"cat", 3)], seq=1))
    assert switch.controller.fetch_and_reset(1, part=0) == {b"cat": 1}
    assert switch.controller.fetch_and_reset(1, part=1) == {b"cat": 3}


def test_unknown_task_data_still_deduped_and_forwarded():
    cfg, switch = _switch()
    pkt = _data_packet(cfg, [(b"cat", 1)], task=42)
    decision = _process(switch, pkt)
    assert decision.action is SwitchAction.FORWARD
    assert decision.emit[0].bitmap == pkt.bitmap


def test_ack_packets_are_routed_untouched():
    cfg, switch = _switch()
    ack = AskPacket(PacketFlag.ACK, 1, "switch", "h0", 0, 7)
    decision = _process(switch, ack)
    assert decision.action is SwitchAction.FORWARD
    assert decision.emit == [ack]


def test_partial_medium_group_bitmap_is_a_protocol_error():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    medium_key = b"abcdef"  # 6 bytes -> medium
    pkt = _data_packet(cfg, [(medium_key, 1)])
    broken = pkt.with_bitmap(pkt.bitmap & (pkt.bitmap - 1))  # clear lowest bit
    if broken.bitmap:
        with pytest.raises(ProtocolError):
            _process(switch, broken)


def test_per_tuple_stats_accumulate():
    cfg, switch = _switch()
    switch.controller.allocate_region(1)
    _process(switch, _data_packet(cfg, [(b"cat", 1), (b"dogs", 1)], seq=0))
    assert switch.stats.data_packets == 1
    assert switch.stats.packets_acked == 1
    assert switch.pool.tuples_aggregated == 2
