"""Stateful fuzzing of switch and host ingress.

Hostile packet objects — random flag bytes, out-of-range indices,
negative sequence numbers, nonsense bitmaps, plus checksum-failed
wrappers around field-mutated valid frames (the sim fabric's corruption
model) — are driven through ``AskSwitch.receive`` and
``HostDaemon.receive`` on a fully wired deployment.  The invariants:

- no exception ever escapes an ingress,
- every refused packet shows up as a counted drop or a quarantine entry
  (accounted, never silent),
- the deployment still aggregates bit-exactly afterwards — a poison-pill
  stream must not wedge the pipeline or the receive windows.

Frames that are *semantically valid* (they pass validation and carry a
matching checksum) are indistinguishable from real traffic by design —
ASK has no sender authentication — so the fuzzer only injects frames the
integrity layer is specified to refuse.  In-flight damage to real
traffic, where the genuine copy is retransmitted, is covered by the
corruption property tests instead.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.packet import AskPacket, Slot
from repro.core.results import reference_aggregate
from repro.core.robustness import (
    validate_host_ingress,
    validate_switch_ingress,
)
from repro.core.service import AskService
from repro.net.fault import CorruptedFrame, corrupt_packet_fields

NODE_NAMES = ["h0", "h1", "h2", "switch"]

_slots = st.lists(
    st.one_of(
        st.none(),
        st.builds(
            Slot,
            key=st.binary(min_size=0, max_size=16),
            value=st.integers(-(2**31), 2**63),
        ),
    ),
    max_size=8,
).map(tuple)

#: Deliberately hostile field ranges: undefined flag bits, impossible
#: combinations, negative ids/seqs, bitmaps wider than any slot tuple.
_garbage_packets = st.builds(
    AskPacket,
    flags=st.integers(0, 255),
    task_id=st.integers(-10, 2**50),
    src=st.sampled_from(NODE_NAMES),
    dst=st.sampled_from(NODE_NAMES),
    channel_index=st.integers(-3, 300),
    seq=st.integers(-10, 2**41),
    bitmap=st.integers(-2, 2**20),
    slots=_slots,
    ecn=st.booleans(),
)


def _valid_stream_packet(rng: random.Random, config: AskConfig) -> AskPacket:
    from repro.core.packer import pack_stream

    tuples = [
        (("k%03d" % rng.randint(0, 50)).encode(), rng.randint(0, 2**20))
        for _ in range(3)
    ]
    payloads, _ = pack_stream(tuples, config)
    payload = payloads[0]
    flags = 0x1 | (0x10 if payload.is_long else 0)
    return AskPacket(
        flags, 1, "h0", "h2", 0, rng.randint(0, 7),
        bitmap=payload.bitmap, slots=payload.slots,
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    packets=st.lists(_garbage_packets, min_size=1, max_size=25),
    seed=st.integers(0, 10_000),
)
def test_ingress_survives_garbage_and_stays_exact(packets, seed):
    rng = random.Random(seed)
    service = AskService(AskConfig.small(), hosts=3)
    switch = service.switch
    config = service.config
    daemon = service.deployment.daemons["h2"]

    # Checksum-failed wrappers around field-mutated real frames: the
    # shape the sim fabric's corruption model actually delivers.
    stream = list(packets) + [
        CorruptedFrame(corrupt_packet_fields(_valid_stream_packet(rng, config), rng))
        for _ in range(6)
    ]
    rng.shuffle(stream)

    injected = 0
    for pkt in stream:
        to_switch = rng.random() < 0.7
        target = switch if to_switch else daemon
        if type(pkt) is CorruptedFrame:
            refused = True
        elif pkt.flags & 0x2:  # ACK bit set
            if to_switch:
                continue  # plain-routed transit at the switch, skip
            if pkt.channel_index == -1 or 0 <= pkt.channel_index < len(
                daemon.channels
            ):
                continue  # would be consumed as a (spoofed) valid ACK
            refused = True  # out-of-range ACK: counted as malformed
        else:
            validator = validate_switch_ingress if to_switch else validate_host_ingress
            width = config.data_channels_per_host if to_switch else len(daemon.channels)
            reason = validator(pkt, config.num_aas, width)
            if reason is None or (to_switch and not switch._should_run_program(pkt)):
                # Passes validation (or is plain-routed transit): a frame
                # indistinguishable from real traffic — out of scope here.
                continue
            refused = True
        injected += 1
        before = target.robustness.total + getattr(target, "malformed_packets", 0)
        target.receive(pkt)  # must never raise
        service.run()  # drain routed deliveries / pipeline egress
        after = target.robustness.total + getattr(target, "malformed_packets", 0)
        if refused:
            assert after > before, "refused packet was not accounted"

    # Nothing the fuzzer injected may wedge the pipeline: a clean
    # aggregation over the same deployment still comes out bit-exact.
    streams = {
        "h0": [(b"alpha", 1), (b"beta", 2)] * 10,
        "h1": [(b"alpha", 3), (b"gamma", 5)] * 10,
    }
    expected = reference_aggregate(
        {h: list(s) for h, s in streams.items()}, config.value_mask
    )
    result = service.aggregate(streams, receiver="h2")
    assert result.values == expected
    # The quarantine never grows past its bound no matter the stream.
    assert switch.quarantine.held() <= switch.quarantine.limit
    assert daemon.quarantine.held() <= daemon.quarantine.limit
