"""Access-discipline parity: ``aggregate_fast`` vs the ALU ``execute`` path.

``AggregatorArray.aggregate_fast`` inlines the register access prologue
(duplicate-access stamp, stage ordering, bounds check) that
``try_aggregate`` gets from ``RegisterArray.execute``.  Inlined copies
drift; this property pins them together: for any sequence of aggregation
attempts — including double accesses in one pass, backwards stage moves
and out-of-range indices — both paths must raise the *same* exception
(type and message) at the same step, return the same outcome code, and
leave identical cells and access counts behind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.aggregator import AggregatorArray
from repro.switch.pisa import Pipeline
from repro.switch.registers import PassContext

_SIZE = 8
_KEYS = [b"aaaa", b"bbbb", b"cccc", b"odd"]  # incl. one off-width segment


def _build():
    """Two AAs placed in consecutive pipeline stages (so the stage-order
    rule is live) plus a free-floating AA (stage-less arrays skip it)."""
    pipeline = Pipeline(max_stages=4)
    first = AggregatorArray("A", _SIZE, key_bits=32, value_bits=32)
    second = AggregatorArray("B", _SIZE, key_bits=32, value_bits=32)
    free = AggregatorArray("F", _SIZE, key_bits=32, value_bits=32)
    pipeline.stage(0).add_array(first.registers)
    pipeline.stage(1).add_array(second.registers)
    return [first, second, free]


def _code(outcome):
    if outcome.reserved:
        return AggregatorArray.RESERVED
    if outcome.success:
        return AggregatorArray.MATCHED
    return AggregatorArray.FAIL


_op = st.one_of(
    st.just(("pass",)),
    st.tuples(
        st.just("agg"),
        st.integers(0, 2),  # which array
        st.integers(-1, _SIZE + 1),  # index, deliberately past both ends
        st.integers(0, len(_KEYS) - 1),
        st.one_of(st.none(), st.integers(0, 2**33)),  # add_value (may wrap)
        st.booleans(),  # enabled (predicated no-op)
    ),
)


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=30))
def test_fast_and_execute_paths_agree_on_every_access_sequence(ops):
    fast_arrays = _build()
    oracle_arrays = _build()
    fast_ctx = PassContext()
    oracle_ctx = PassContext()
    for step, op in enumerate(ops):
        if op[0] == "pass":
            fast_ctx.reset()
            oracle_ctx.reset()
            continue
        _, which, index, key_id, add_value, enabled = op
        segment = _KEYS[key_id]
        fast_exc = oracle_exc = None
        fast_code = oracle_code = None
        try:
            fast_code = fast_arrays[which].aggregate_fast(
                fast_ctx, index, segment, add_value, enabled=enabled
            )
        except Exception as exc:  # noqa: BLE001 - parity is the property
            fast_exc = exc
        try:
            oracle_code = _code(
                oracle_arrays[which].try_aggregate(
                    oracle_ctx, index, segment, add_value, enabled=enabled
                )
            )
        except Exception as exc:  # noqa: BLE001
            oracle_exc = exc
        if oracle_exc is not None or fast_exc is not None:
            assert type(fast_exc) is type(oracle_exc), (
                f"step {step}: fast raised {fast_exc!r}, "
                f"execute raised {oracle_exc!r}"
            )
            assert str(fast_exc) == str(oracle_exc), f"step {step}"
        else:
            assert fast_code == oracle_code, f"step {step}"
    # Identical final state: every cell, every access count.
    for fast, oracle in zip(fast_arrays, oracle_arrays):
        assert fast.registers.accesses == oracle.registers.accesses
        for i in range(_SIZE):
            assert fast.control_cell(i) == oracle.control_cell(i), (fast.name, i)
