"""Tests for the shadow-copy directory."""

import pytest

from repro.core.config import AskConfig
from repro.switch.registers import PassContext
from repro.switch.shadow import ShadowDirectory


def _shadow(enabled=True, aggregators=64):
    cfg = AskConfig.small(shadow_copy=enabled, aggregators_per_aa=aggregators)
    return ShadowDirectory(cfg, max_tasks=4)


def test_initial_write_part_is_zero():
    shadow = _shadow()
    assert shadow.write_part(PassContext(), 0) == 0


def test_swap_flips_write_part():
    shadow = _shadow()
    shadow.apply_swap(PassContext(), 0, 1)
    assert shadow.write_part(PassContext(), 0) == 1


def test_swap_is_idempotent_for_duplicated_notifications():
    shadow = _shadow()
    shadow.apply_swap(PassContext(), 0, 1)
    shadow.apply_swap(PassContext(), 0, 1)  # retransmitted notification
    assert shadow.write_part(PassContext(), 0) == 1


def test_read_part_is_the_other_copy():
    shadow = _shadow()
    assert shadow.read_part_of(0) == 1
    assert shadow.read_part_of(1) == 0


def test_part_offset_is_copy_size():
    shadow = _shadow(aggregators=64)
    assert shadow.part_offset(0) == 0
    assert shadow.part_offset(1) == 32


def test_disabled_shadow_single_copy():
    shadow = _shadow(enabled=False)
    assert shadow.write_part(PassContext(), 0) == 0
    assert shadow.read_part_of(0) == 0
    assert shadow.part_offset(0) == 0
    with pytest.raises(ValueError):
        shadow.part_offset(1)


def test_tasks_have_independent_indicators():
    shadow = _shadow()
    shadow.apply_swap(PassContext(), 1, 1)
    assert shadow.write_part(PassContext(), 0) == 0
    assert shadow.write_part(PassContext(), 1) == 1


def test_clear_resets_indicator_for_slot_reuse():
    shadow = _shadow()
    shadow.apply_swap(PassContext(), 0, 1)
    shadow.clear(0)
    assert shadow.write_part(PassContext(), 0) == 0


def test_invalid_part_rejected():
    shadow = _shadow()
    with pytest.raises(ValueError):
        shadow.part_offset(2)
