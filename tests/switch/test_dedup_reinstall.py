"""Failover re-install baselines (control plane → DedupUnit).

After a reboot wipes the reliability registers, ``reinstall_channel``
writes exactly the state a healthy switch would hold had it just
processed ``next_seq - 1``.  These tests pin the baseline math — most
importantly the compact ``seen`` parity for *odd* segments, where the
power-on-zero register would misread a fresh sequence as a duplicate —
and the self-healing behaviour for pre-baseline stragglers.
"""

import pytest

from repro.core.config import AskConfig
from repro.switch.dedup import DedupUnit
from repro.switch.registers import PassContext

W = 8


def _unit(compact=True, window=W):
    cfg = AskConfig.small(window_size=window, use_compact_seen=compact)
    return DedupUnit(cfg, max_channels=4)


# Baselines across both segment parities and mid-segment offsets.
BASELINES = [8, 12, 16, 20, 27, 40]


@pytest.mark.parametrize("compact", [True, False])
@pytest.mark.parametrize("next_seq", BASELINES)
def test_contiguous_stream_from_baseline_reads_fresh(compact, next_seq):
    unit = _unit(compact=compact)
    unit.reinstall_channel(0, next_seq)
    for seq in range(next_seq, next_seq + 3 * W):
        verdict = unit.check(PassContext(), 0, seq)
        assert not verdict.stale and not verdict.observed, f"seq {seq}"
    assert unit.stale_drops == 0 and unit.duplicates_detected == 0


@pytest.mark.parametrize("compact", [True, False])
@pytest.mark.parametrize("next_seq", BASELINES)
def test_duplicates_still_detected_after_baseline(compact, next_seq):
    unit = _unit(compact=compact)
    unit.reinstall_channel(0, next_seq)
    unit.check(PassContext(), 0, next_seq)
    verdict = unit.check(PassContext(), 0, next_seq)
    assert verdict.observed and not verdict.stale


def test_odd_segment_baseline_would_misread_without_reinstall():
    # The failure mode the baseline exists to prevent: seq 24 with W=8
    # lands in segment 3 (odd), where the compact scheme reports the
    # *complement* of the stored bit — all-zero registers read "seen".
    unit = _unit(compact=True)
    verdict = unit.check(PassContext(), 0, 3 * W)
    assert verdict.observed, "precondition for the baseline's existence"
    healed = _unit(compact=True)
    healed.reinstall_channel(0, 3 * W)
    verdict = healed.check(PassContext(), 0, 3 * W)
    assert not verdict.observed and not verdict.stale


@pytest.mark.parametrize("next_seq", [16, 20, 27])
def test_straggler_within_window_reads_duplicate_and_heals(next_seq):
    # A pre-reboot packet less than W below the baseline arrives late: in
    # the compact design it must read as a duplicate (drop + ACK, bitmap 0
    # → nothing re-added) AND leave the seen bit such that the real first
    # appearance of its residue still reads fresh afterwards.  (The 2W
    # reference design lacks this defense-in-depth — a down switch drops
    # frames outright, so no straggler can reach a rebooted switch.)
    unit = _unit(compact=True)
    unit.reinstall_channel(0, next_seq)
    straggler = next_seq - 1
    verdict = unit.check(PassContext(), 0, straggler)
    assert verdict.observed and not verdict.stale
    assert unit.load_bitmap(PassContext(), 0, straggler) == 0
    first = straggler + W  # same residue class, the real first appearance
    verdict = unit.check(PassContext(), 0, first)
    assert not verdict.observed and not verdict.stale


@pytest.mark.parametrize("compact", [True, False])
def test_straggler_a_full_window_below_is_stale(compact):
    unit = _unit(compact=compact)
    unit.reinstall_channel(0, 20)
    # max_seq = 19, stale guard drops seq <= 19 - W = 11.
    assert unit.check(PassContext(), 0, 11).stale
    assert unit.check(PassContext(), 0, 3).stale
    assert not unit.check(PassContext(), 0, 12).stale


@pytest.mark.parametrize("compact", [True, False])
def test_pkt_state_is_zeroed_by_reinstall(compact):
    unit = _unit(compact=compact)
    unit.check(PassContext(), 0, 5)
    unit.record_bitmap(PassContext(), 0, 5, 0b1011)
    unit.reinstall_channel(0, 16)
    for offset in range(W):
        assert unit.load_bitmap(PassContext(), 0, 16 + offset) == 0


def test_reinstall_only_touches_its_channel():
    unit = _unit(compact=True)
    unit.check(PassContext(), 1, 7)
    unit.record_bitmap(PassContext(), 1, 7, 0b1)
    unit.reinstall_channel(0, 24)
    verdict = unit.check(PassContext(), 1, 7)
    assert verdict.observed  # neighbour's dedup state intact
    assert unit.load_bitmap(PassContext(), 1, 7) == 0b1


def test_reinstall_rejects_out_of_range_slot():
    unit = _unit()
    with pytest.raises(IndexError):
        unit.reinstall_channel(4, 8)
    with pytest.raises(IndexError):
        unit.reinstall_channel(-1, 8)
