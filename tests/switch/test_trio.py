"""Tests for the Trio run-to-completion backend (§6)."""

import random

import pytest

from repro.core.config import AskConfig
from repro.core.errors import RegionExhaustedError, TaskStateError
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.switch.trio import TRIO_LATENCY_FACTOR, TrioController, TrioSwitch
from repro.workloads.datasets import get_dataset


def _service(fault=None, **overrides):
    cfg = AskConfig.small(shadow_copy=False, **overrides)
    return AskService(cfg, hosts=2, switch_factory=TrioSwitch, fault=fault)


def test_basic_aggregation_matches_reference():
    service = _service()
    result = service.aggregate(
        {"h0": [(b"cat", 1), (b"dog", 2), (b"cat", 3)]}, receiver="h1", check=True
    )
    assert result[b"cat"] == 4


def test_long_keys_aggregate_on_the_switch():
    """The §6 improvement: no long-key bypass on run-to-completion."""
    service = _service()
    stream = [(b"a-very-long-key-%02d" % (i % 5), 1) for i in range(200)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    assert result.stats.switch_aggregation_ratio == 1.0
    assert result.stats.tuples_merged_at_receiver == 0


def test_pisa_backend_cannot_do_that():
    cfg = AskConfig.small(shadow_copy=False)
    service = AskService(cfg, hosts=2)  # default PISA backend
    stream = [(b"a-very-long-key-%02d" % (i % 5), 1) for i in range(200)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    assert result.stats.switch_aggregation_ratio == 0.0  # all bypassed


def test_exactly_once_under_faults():
    rng = random.Random(1)
    keys = [b"short", b"mediumkey"[:6], b"a-definitely-long-key"]
    stream = [(rng.choice(keys), rng.randint(1, 9)) for _ in range(400)]
    fault = FaultModel(loss_rate=0.1, duplicate_rate=0.08, reorder_rate=0.1, seed=7)
    service = _service(fault=fault)
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    assert result.stats.retransmissions > 0


def test_capacity_overflow_falls_back_to_receiver():
    service = _service()
    stream = [(("k%03d" % i).encode(), 1) for i in range(100)]
    # Budget of 1 per virtual AA * 8 AAs = 8 table entries.
    result = service.aggregate({"h0": stream}, receiver="h1", region_size=1, check=True)
    assert 0 < result.stats.tuples_aggregated_at_switch <= 8
    assert result.stats.tuples_merged_at_receiver >= 92


def test_swap_notifications_are_harmless_noops():
    # Shadow copies are pointless on Trio but the host may still send
    # swap notifications; the protocol must stay exact.
    cfg = AskConfig.small(shadow_copy=True, swap_threshold_packets=2)
    service = AskService(cfg, hosts=2, switch_factory=TrioSwitch)
    stream = [(("k%02d" % (i % 20)).encode(), 1) for i in range(300)]
    # A tiny store forces forwards, so the receiver reaches its swap
    # threshold and notifies the switch.
    result = service.aggregate({"h0": stream}, receiver="h1", region_size=1, check=True)
    assert result.stats.swaps >= 1  # acknowledged and completed


def test_processing_latency_is_slower_than_pisa():
    service = _service()
    assert (
        service.switch.processing_latency_ns
        == service.config.switch_pipeline_latency_ns * TRIO_LATENCY_FACTOR
    )


def test_controller_budget_accounting():
    cfg = AskConfig.small(shadow_copy=False)
    controller = TrioController(cfg, max_tasks=4, total_entries=100)
    store = controller.allocate_region(1, size=10)  # 10 * 8 AAs = 80 entries
    assert store.capacity == 80
    with pytest.raises(RegionExhaustedError):
        controller.allocate_region(2, size=10)
    controller.deallocate(1)
    controller.allocate_region(2, size=10)


def test_controller_rejects_double_allocation_and_unknown_tasks():
    cfg = AskConfig.small(shadow_copy=False)
    controller = TrioController(cfg, max_tasks=4, total_entries=10_000)
    controller.allocate_region(1, size=1)
    with pytest.raises(TaskStateError):
        controller.allocate_region(1, size=1)
    with pytest.raises(TaskStateError):
        controller.fetch_and_reset(9, 0)


def test_fetch_part_one_is_empty():
    cfg = AskConfig.small(shadow_copy=False)
    controller = TrioController(cfg, max_tasks=4, total_entries=10_000)
    store = controller.allocate_region(1, size=4)
    store.table[b"k"] = 5
    assert controller.fetch_and_reset(1, 1) == {}
    assert controller.fetch_and_reset(1, 0) == {b"k": 5}
    assert controller.fetch_and_reset(1, 0) == {}


def test_text_corpus_trio_beats_pisa_on_switch_ratio():
    stream = get_dataset("NG", 2_000).stream(3_000, seed=3)
    pisa = AskService(
        AskConfig.small(shadow_copy=False, aggregators_per_aa=4096), hosts=2
    ).aggregate({"h0": stream}, receiver="h1", check=True)
    trio = _service(aggregators_per_aa=4096).aggregate(
        {"h0": stream}, receiver="h1", check=True
    )
    assert trio.stats.switch_aggregation_ratio > pisa.stats.switch_aggregation_ratio
