"""Tests for the switch controller: regions, channels, fetch-and-reset."""

import pytest

from repro.core.config import AskConfig
from repro.core.errors import RegionExhaustedError, TaskStateError
from repro.core.hashing import address_hash
from repro.core.keyspace import KeySpaceLayout, pad_key
from repro.switch.aggregator import AggregatorPool
from repro.switch.controller import SwitchController
from repro.switch.pisa import Pipeline
from repro.switch.registers import PassContext
from repro.switch.shadow import ShadowDirectory


def _controller(config=None, max_tasks=4, max_channels=8):
    cfg = config or AskConfig(
        num_aas=4,
        aggregators_per_aa=32,
        medium_key_groups=1,
        medium_group_width=2,
        window_size=8,
    )
    pool = AggregatorPool(cfg, Pipeline(max_stages=32), first_stage=0)
    shadow = ShadowDirectory(cfg, max_tasks)
    return cfg, pool, SwitchController(cfg, pool, shadow, max_tasks, max_channels)


def test_allocate_default_takes_largest_extent():
    cfg, pool, ctrl = _controller()
    region = ctrl.allocate_region(1)
    assert region.offset == 0
    assert region.size == cfg.copy_size


def test_regions_do_not_overlap():
    cfg, pool, ctrl = _controller()
    a = ctrl.allocate_region(1, size=4)
    b = ctrl.allocate_region(2, size=4)
    assert {a.offset, b.offset} == {0, 4}


def test_double_allocation_rejected():
    cfg, pool, ctrl = _controller()
    ctrl.allocate_region(1, size=4)
    with pytest.raises(TaskStateError):
        ctrl.allocate_region(1, size=4)


def test_exhaustion_raises():
    cfg, pool, ctrl = _controller()
    ctrl.allocate_region(1, size=cfg.copy_size)
    with pytest.raises(RegionExhaustedError):
        ctrl.allocate_region(2, size=1)


def test_deallocate_frees_extent_and_task_slot():
    cfg, pool, ctrl = _controller()
    region = ctrl.allocate_region(1, size=cfg.copy_size)
    ctrl.deallocate(1)
    again = ctrl.allocate_region(2, size=cfg.copy_size)
    assert again.offset == region.offset


def test_deallocate_unknown_task_rejected():
    cfg, pool, ctrl = _controller()
    with pytest.raises(TaskStateError):
        ctrl.deallocate(9)


def test_first_fit_reuses_gap():
    cfg, pool, ctrl = _controller()
    ctrl.allocate_region(1, size=4)
    ctrl.allocate_region(2, size=4)
    ctrl.deallocate(1)
    region = ctrl.allocate_region(3, size=4)
    assert region.offset == 0


def test_task_slots_limited():
    cfg, pool, ctrl = _controller(max_tasks=2)
    ctrl.allocate_region(1, size=1)
    ctrl.allocate_region(2, size=1)
    with pytest.raises(RegionExhaustedError):
        ctrl.allocate_region(3, size=1)


def test_channel_slots_dense_and_persistent():
    cfg, pool, ctrl = _controller()
    assert ctrl.channel_slot(("h0", 0)) == 0
    assert ctrl.channel_slot(("h1", 0)) == 1
    assert ctrl.channel_slot(("h0", 0)) == 0  # stable on re-lookup
    assert ctrl.num_channels == 2


def test_channel_capacity_enforced():
    cfg, pool, ctrl = _controller(max_channels=1)
    ctrl.channel_slot(("h0", 0))
    with pytest.raises(RegionExhaustedError):
        ctrl.channel_slot(("h0", 1))


def test_fetch_and_reset_short_keys():
    cfg, pool, ctrl = _controller()
    region = ctrl.allocate_region(1)
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"cat")
    index = region.offset + address_hash(assignment.padded) % region.size
    pool.aggregate_short(PassContext(), assignment.primary_slot, index, assignment.padded, 7)
    fetched = ctrl.fetch_and_reset(1, part=0)
    assert fetched == {b"cat": 7}
    # Reset: a second fetch returns nothing.
    assert ctrl.fetch_and_reset(1, part=0) == {}


def test_fetch_and_reset_reconstructs_medium_keys():
    cfg, pool, ctrl = _controller()
    region = ctrl.allocate_region(1)
    layout = KeySpaceLayout(cfg)
    key = b"yourself"[:6]  # 6 bytes -> medium
    assignment = layout.assign(key)
    segments = layout.segments(assignment.padded)
    index = region.offset + address_hash(assignment.padded) % region.size
    pool.aggregate_group(PassContext(), assignment.slots, index, segments, 11)
    fetched = ctrl.fetch_and_reset(1, part=0)
    assert fetched == {key: 11}


def test_fetch_unknown_task_rejected():
    cfg, pool, ctrl = _controller()
    with pytest.raises(TaskStateError):
        ctrl.fetch_and_reset(3, part=0)


def test_deallocate_clears_cells():
    cfg, pool, ctrl = _controller()
    region = ctrl.allocate_region(1)
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"dog")
    index = region.offset + address_hash(assignment.padded) % region.size
    pool.aggregate_short(PassContext(), assignment.primary_slot, index, assignment.padded, 3)
    ctrl.deallocate(1)
    region2 = ctrl.allocate_region(2)
    assert ctrl.fetch_and_reset(2, part=0) == {}


def test_region_occupancy_metric():
    cfg, pool, ctrl = _controller()
    region = ctrl.allocate_region(1)
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"dog")
    index = region.offset + address_hash(assignment.padded) % region.size
    pool.aggregate_short(PassContext(), assignment.primary_slot, index, assignment.padded, 3)
    occ = ctrl.region_occupancy(1, part=0)
    assert occ == pytest.approx(1 / (region.size * cfg.num_aas))


def test_invalid_region_size():
    cfg, pool, ctrl = _controller()
    with pytest.raises(ValueError):
        ctrl.allocate_region(1, size=0)
