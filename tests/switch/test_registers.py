"""Tests for register arrays and the PISA access restriction."""

import pytest

from repro.switch.registers import PassContext, RegisterAccessError, RegisterArray


def test_single_access_per_pass_allowed():
    array = RegisterArray("r", 8, 32)
    ctx = PassContext()
    array.write(ctx, 0, 7)
    assert array.control_read(0) == 7


def test_second_access_in_same_pass_raises():
    array = RegisterArray("r", 8, 32)
    ctx = PassContext()
    array.read(ctx, 0)
    with pytest.raises(RegisterAccessError):
        array.read(ctx, 1)


def test_read_then_write_same_pass_raises():
    # One read-modify-write is the budget; a separate read then write is two.
    array = RegisterArray("r", 8, 32)
    ctx = PassContext()
    array.read(ctx, 0)
    with pytest.raises(RegisterAccessError):
        array.write(ctx, 0, 1)


def test_rmw_via_execute_is_one_access():
    array = RegisterArray("r", 8, 32)
    ctx = PassContext()
    result = array.execute(ctx, 3, lambda old: (old + 5, old))
    assert result == 0
    assert array.control_read(3) == 5


def test_fresh_pass_resets_the_budget():
    array = RegisterArray("r", 8, 32)
    array.read(PassContext(), 0)
    array.read(PassContext(), 0)  # new pass, fine


def test_two_arrays_one_pass_each_ok():
    a = RegisterArray("a", 4, 32)
    b = RegisterArray("b", 4, 32)
    ctx = PassContext()
    a.read(ctx, 0)
    b.read(ctx, 0)


def test_relaxed_array_allows_multiple_accesses():
    array = RegisterArray("relaxed", 8, 1, relax_access_limit=True)
    ctx = PassContext()
    array.read(ctx, 0)
    array.write(ctx, 0, 1)
    array.write(ctx, 4, 0)


def test_stage_order_cannot_go_backwards():
    early = RegisterArray("early", 4, 32)
    late = RegisterArray("late", 4, 32)
    early.stage_index = 0
    late.stage_index = 3
    ctx = PassContext()
    late.read(ctx, 0)
    with pytest.raises(RegisterAccessError):
        early.read(ctx, 0)


def test_stage_order_forward_and_same_stage_ok():
    a = RegisterArray("a", 4, 32)
    b = RegisterArray("b", 4, 32)
    c = RegisterArray("c", 4, 32)
    a.stage_index = b.stage_index = 1
    c.stage_index = 2
    ctx = PassContext()
    a.read(ctx, 0)
    b.read(ctx, 0)
    c.read(ctx, 0)


def test_set_bit_returns_previous_value():
    array = RegisterArray("seen", 8, 1)
    assert array.set_bit(PassContext(), 2) == 0
    assert array.set_bit(PassContext(), 2) == 1
    assert array.control_read(2) == 1


def test_clr_bitc_returns_complement_of_previous():
    array = RegisterArray("seen", 8, 1)
    array.control_write(5, 1)
    assert array.clr_bitc(PassContext(), 5) == 0  # was 1 -> complement 0
    assert array.clr_bitc(PassContext(), 5) == 1  # was 0 -> complement 1
    assert array.control_read(5) == 0


def test_index_bounds_checked():
    array = RegisterArray("r", 4, 32)
    with pytest.raises(IndexError):
        array.read(PassContext(), 4)


def test_sram_accounting_rounds_up_to_bytes():
    assert RegisterArray("bits", 10, 1).sram_bytes == 2
    assert RegisterArray("words", 4, 64).sram_bytes == 32


def test_control_plane_bypasses_pass_budget():
    array = RegisterArray("r", 4, 32)
    ctx = PassContext()
    array.read(ctx, 0)
    # Control-plane reads/writes are out-of-band (switch CPU over PCIe).
    array.control_write(1, 9)
    assert array.control_read(1) == 9


def test_control_reset_range():
    array = RegisterArray("r", 6, 32, initial=0)
    for i in range(6):
        array.control_write(i, i + 1)
    array.control_reset(2, 4)
    assert [array.control_read(i) for i in range(6)] == [1, 2, 0, 0, 5, 6]


def test_invalid_construction():
    with pytest.raises(ValueError):
        RegisterArray("bad", 0, 32)
    with pytest.raises(ValueError):
        RegisterArray("bad", 4, 0)


def test_access_counter():
    array = RegisterArray("r", 4, 32)
    array.read(PassContext(), 0)
    array.read(PassContext(), 1)
    assert array.accesses == 2
