"""Tests for the switch reliability state (seen / max_seq / PktState)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.switch.dedup import DedupUnit
from repro.switch.registers import PassContext, RegisterAccessError


def _unit(window=8, compact=True, channels=4, num_aas=8):
    cfg = AskConfig.small(window_size=window, use_compact_seen=compact, num_aas=num_aas)
    return DedupUnit(cfg, max_channels=channels)


def test_first_appearance_not_observed():
    unit = _unit()
    verdict = unit.check(PassContext(), 0, 0)
    assert not verdict.stale and not verdict.observed


def test_second_appearance_observed():
    unit = _unit()
    unit.check(PassContext(), 0, 3)
    verdict = unit.check(PassContext(), 0, 3)
    assert verdict.observed and not verdict.stale
    assert unit.duplicates_detected == 1


def test_stale_packet_dropped_before_touching_seen():
    unit = _unit(window=8)
    unit.check(PassContext(), 0, 20)  # max_seq = 20, window floor = 12
    verdict = unit.check(PassContext(), 0, 12)
    assert verdict.stale
    assert unit.stale_drops == 1


def test_boundary_seq_just_inside_window_accepted():
    # Arrival invariant of the integrated system (§3.3): a sequence number
    # can only be emitted once everything a full window below it was ACKed,
    # i.e. has already traversed the switch.  Deliver 0..12, let 13..19 be
    # in flight, 20 overtakes them, then 13 arrives: it is just inside the
    # window (> max_seq - W) and must be accepted as fresh.
    unit = _unit(window=8)
    for seq in range(13):
        unit.check(PassContext(), 0, seq)
    unit.check(PassContext(), 0, 20)
    verdict = unit.check(PassContext(), 0, 13)
    assert not verdict.stale and not verdict.observed


def test_channels_are_isolated():
    unit = _unit()
    unit.check(PassContext(), 0, 5)
    verdict = unit.check(PassContext(), 1, 5)
    assert not verdict.observed


def test_sequence_wraps_across_segments():
    # Sequences one window apart reuse the same bit with flipped parity.
    unit = _unit(window=4)
    for seq in range(16):
        verdict = unit.check(PassContext(), 0, seq)
        assert not verdict.observed, f"seq {seq} falsely observed"


def test_retransmit_after_window_advance_detected_within_window():
    unit = _unit(window=8)
    for seq in range(6):
        unit.check(PassContext(), 0, seq)
    assert unit.check(PassContext(), 0, 4).observed


def test_compact_design_uses_w_bits_per_channel():
    compact = _unit(window=8, compact=True, channels=2)
    reference = _unit(window=8, compact=False, channels=2)
    assert compact.seen.size == 2 * 8
    assert reference.seen.size == 2 * 16  # 2W per channel


def test_reference_design_needs_relaxed_registers():
    reference = _unit(compact=False)
    assert reference.seen.relax_access_limit
    compact = _unit(compact=True)
    assert not compact.seen.relax_access_limit


def test_compact_design_single_access_per_pass():
    unit = _unit(compact=True)
    ctx = PassContext()
    unit.check(ctx, 0, 0)
    # seen was touched once; touching it again in the same pass must fail.
    with pytest.raises(RegisterAccessError):
        unit.seen.read(ctx, 0)


def test_pkt_state_roundtrip():
    unit = _unit(window=8)
    unit.record_bitmap(PassContext(), 1, 5, 0b1010)
    assert unit.load_bitmap(PassContext(), 1, 5) == 0b1010


def test_pkt_state_indexed_modulo_window_per_channel():
    unit = _unit(window=8)
    unit.record_bitmap(PassContext(), 0, 3, 0b11)
    unit.record_bitmap(PassContext(), 1, 3, 0b01)
    assert unit.load_bitmap(PassContext(), 0, 3) == 0b11
    assert unit.load_bitmap(PassContext(), 1, 3) == 0b01


def test_sram_accounting_close_to_paper():
    # Paper (§3.3): 256 + 256*32 bits = 1056 B per channel for seen+PktState;
    # our accounting adds the 4-byte max_seq register.
    cfg = AskConfig(window_size=256)  # 32 AAs -> 32-bit PktState entries
    unit = DedupUnit(cfg, max_channels=64)
    per_channel = unit.sram_bytes_per_channel()
    assert 1056 <= per_channel <= 1064


def test_channel_slot_bounds_checked():
    unit = _unit(channels=2)
    with pytest.raises(IndexError):
        unit.check(PassContext(), 2, 0)


class _ReferenceWindow:
    """An oracle receive window: explicit set of in-window seen sequences."""

    def __init__(self, window):
        self.window = window
        self.max_seq = -1
        self.seen = set()

    def check(self, seq):
        self.max_seq = max(self.max_seq, seq)
        if seq <= self.max_seq - self.window:
            return "stale"
        if seq in self.seen:
            return "dup"
        self.seen.add(seq)
        self.seen = {s for s in self.seen if s > self.max_seq - self.window}
        return "new"


@settings(max_examples=300, deadline=None)
@given(
    data=st.data(),
    window=st.sampled_from([2, 4, 8]),
    compact=st.booleans(),
)
def test_dedup_equals_oracle_for_window_respecting_arrivals(data, window, compact):
    """Any arrival sequence the integrated system can generate is classified
    identically by the compact design, the 2W reference design and an
    explicit-set oracle.

    The reachable arrival space (§3.3): a sequence number ``s`` can arrive
    only if every sequence ≤ ``s - W`` has already arrived at least once —
    because the sender admits ``s`` only after those were ACKed, and every
    ACK (switch's or receiver's) implies a prior traversal of the switch.
    Within that constraint, arbitrary reordering, duplication and staleness
    are possible, and the strategy exercises them all.
    """
    unit = _unit(window=window, compact=compact, channels=1)
    oracle = _ReferenceWindow(window)
    next_new = 0  # smallest sequence number that has never arrived
    for _ in range(80):
        seq = data.draw(st.integers(min_value=0, max_value=next_new + window - 1))
        if seq == next_new:
            next_new += 1
        expected = oracle.check(seq)
        verdict = unit.check(PassContext(), 0, seq)
        if expected == "new":
            assert not verdict.stale and not verdict.observed
        elif expected == "dup":
            assert verdict.stale or verdict.observed
        else:
            assert verdict.stale
