"""Differential tests: the SoA batch engine vs the scalar oracle.

The vectorized data plane must be *decision-identical* to running the
same packets one at a time through the compiled scalar program — same
actions, same emitted packets (bitmaps, ACK targets), same counters, same
aggregated state.  These tests drive both engines with identical packet
sequences, with batches sized to force the vector sweep (``VEC_MIN`` or
more same-instant lanes), and compare everything observable.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.errors import ProtocolError, RegionExhaustedError
from repro.core.packer import pack_stream
from repro.core.packet import AskPacket, PacketFlag, Slot, swap_packet
from repro.net.simulator import Simulator
from repro.switch.switch import AskSwitch
from repro.switch.vectorized import VEC_MIN, VectorizedAskSwitch


def _pair(config=None, max_channels=64):
    cfg = config or AskConfig.small(shadow_copy=True)
    scalar = AskSwitch(cfg, Simulator(), max_tasks=4, max_channels=max_channels)
    vector = VectorizedAskSwitch(
        cfg, Simulator(), max_tasks=4, max_channels=max_channels
    )
    return cfg, scalar, vector


def _data_packet(cfg, tuples, seq=0, task=1, src="h0", dst="h1", channel=0):
    payloads, _ = pack_stream(tuples, cfg)
    assert len(payloads) == 1, "test tuples must fit one packet"
    payload = payloads[0]
    flags = PacketFlag.DATA | (PacketFlag.LONG if payload.is_long else PacketFlag(0))
    return AskPacket(
        flags=flags,
        task_id=task,
        src=src,
        dst=dst,
        channel_index=channel,
        seq=seq,
        bitmap=payload.bitmap,
        slots=payload.slots,
    )


def _scalar_outcomes(switch, packets):
    """Run the scalar oracle packet-by-packet, mapping mid-pass raises to
    the quarantine reasons the facade would record."""
    outcomes = []
    for pkt in packets:
        try:
            outcomes.append(switch.program.process(switch.pipeline.begin_pass(), pkt))
        except ProtocolError:
            outcomes.append("protocol-invariant")
        except RegionExhaustedError:
            outcomes.append("region-exhausted")
    return outcomes


def _stats_dict(switch):
    s = switch.program.stats
    return {
        "data_packets": s.data_packets,
        "packets_acked": s.packets_acked,
        "packets_forwarded": s.packets_forwarded,
        "stale_drops": s.stale_drops,
        "retransmissions_seen": s.retransmissions_seen,
        "tuples_seen": s.tuples_seen,
        "tuples_aggregated": s.tuples_aggregated,
        "swaps": s.swaps,
        "fins": s.fins,
        "long_packets": s.long_packets,
        "unknown_task_packets": s.unknown_task_packets,
        "pool_aggregated": switch.pool.tuples_aggregated,
        "pool_failed": switch.pool.tuples_failed,
        "pool_reserved": switch.pool.aggregators_reserved,
        "unit_stale": switch.dedup.stale_drops,
        "unit_dups": switch.dedup.duplicates_detected,
        "swaps_applied": switch.shadow.swaps_applied,
    }


def _assert_equivalent(scalar, vector, packets):
    expected = _scalar_outcomes(scalar, packets)
    got = vector.program.process_batch(packets)
    assert len(got) == len(expected)
    for pos, (want, have) in enumerate(zip(expected, got)):
        if isinstance(want, str):
            assert have == want, f"packet {pos}: {have!r} != {want!r}"
        else:
            assert not isinstance(have, str), f"packet {pos}: {have!r}"
            assert have.action is want.action, f"packet {pos}"
            assert have.emit == want.emit, f"packet {pos}"
    assert _stats_dict(vector) == _stats_dict(scalar)


def _drain_state(scalar, vector, tasks=(1,)):
    for task in tasks:
        for part in (0, 1):
            assert scalar.controller.fetch_and_reset(
                task, part
            ) == vector.controller.fetch_and_reset(task, part), (task, part)


# ---------------------------------------------------------------------------
# Deterministic sweep scenarios
# ---------------------------------------------------------------------------


def test_wide_batch_of_distinct_channels_hits_the_sweep():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, i + 1)], seq=0, src=f"h{i}")
        for i in range(2 * VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, packets)
    _drain_state(scalar, vector)


def test_same_channel_duplicates_in_one_batch_go_scalar_and_agree():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    # Lanes 0..VEC_MIN-1 distinct channels; the last four share a channel
    # (one true duplicate pair among them) — the conflict rule must route
    # the shared-channel lanes through the scalar mirror.
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    packets += [
        _data_packet(cfg, [(b"dup", 5)], seq=0, src="hx"),
        _data_packet(cfg, [(b"dup", 5)], seq=0, src="hx"),  # duplicate
        _data_packet(cfg, [(b"dup2", 1)], seq=1, src="hx"),
        _data_packet(cfg, [(b"other", 2)], seq=0, src="hy"),
    ]
    _assert_equivalent(scalar, vector, packets)
    _drain_state(scalar, vector)


def test_same_key_cell_conflict_across_lanes_agrees():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    # Every lane adds to the SAME key from a different channel: all lanes
    # touch one aggregator cell, so all must fall back to the ordered
    # scalar mirror; the final value is the full sum either way.
    packets = [
        _data_packet(cfg, [(b"hot", 1)], seq=0, src=f"h{i}")
        for i in range(2 * VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, packets)
    _drain_state(scalar, vector)


def test_medium_groups_and_mixed_key_classes_in_one_sweep():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    rng = random.Random(5)
    keys = (
        [b"s%02d" % i for i in range(8)]  # short
        + [b"medium%02d" % i for i in range(8)]  # medium groups
        + [b"long-key-%032d" % i for i in range(2)]  # LONG bypass
    )
    packets = [
        _data_packet(cfg, [(rng.choice(keys), rng.randrange(1, 100))], seq=0, src=f"h{i}")
        for i in range(4 * VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, packets)
    _drain_state(scalar, vector)


def test_swap_barrier_splits_runs_and_flips_the_copy():
    cfg, scalar, vector = _pair()
    region_s = scalar.controller.allocate_region(1)
    region_v = vector.controller.allocate_region(1)
    assert region_s.task_slot == region_v.task_slot
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    packets.append(swap_packet(1, "h1", "switch", epoch=1))
    packets += [
        _data_packet(cfg, [(b"k%02d" % i, 2)], seq=1, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, packets)
    # Epoch-0 writes land in part 0, post-swap writes in part 1.
    _drain_state(scalar, vector)


def test_stale_and_retransmitted_lanes_in_the_sweep():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    w = cfg.window_size
    first = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=3 * w, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, first)
    # Second batch: every lane stale (same channels, far-behind seqs).
    stale = [
        _data_packet(cfg, [(b"z%02d" % i, 1)], seq=2 * w - 1, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, stale)
    # Third batch: exact retransmissions — observed lanes must replay the
    # recorded bitmap without touching the aggregators again.
    _assert_equivalent(scalar, vector, first)
    _drain_state(scalar, vector)


def test_unknown_task_lanes_forward_without_aggregating():
    cfg, scalar, vector = _pair()
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}", task=42)
        for i in range(2 * VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, packets)


def test_protocol_error_lane_quarantines_identically():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    # A live bit pointing at a blank slot: the scalar pass raises
    # ProtocolError mid-aggregation; the engine must report the same
    # quarantine reason and leave identical partial state behind.
    base = _data_packet(cfg, [(b"aa", 1), (b"bb", 2)], seq=0, src="hz")
    top = base.bitmap.bit_length() - 1  # blank out the highest live slot
    blank_hole = AskPacket(
        flags=base.flags,
        task_id=base.task_id,
        src=base.src,
        dst=base.dst,
        channel_index=base.channel_index,
        seq=base.seq,
        bitmap=base.bitmap,
        slots=tuple(
            None if i == top else slot for i, slot in enumerate(base.slots)
        ),
    )
    packets.insert(3, blank_hole)
    _assert_equivalent(scalar, vector, packets)
    _drain_state(scalar, vector)


def test_exotic_key_lengths_fall_back_per_lane():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    # Hand-built hostile frame: a slot key that is NOT key_bytes long
    # (never produced by the packer, possible on the wire).  The engine
    # must byte-compare it via the exotic side table, like the scalar
    # cell's bytes comparison.
    weird = AskPacket(
        flags=PacketFlag.DATA,
        task_id=1,
        src="hq",
        dst="h1",
        channel_index=0,
        seq=0,
        bitmap=1,
        slots=(Slot(b"xy", 9),) + (None,) * (cfg.num_aas - 1),
    )
    packets.append(weird)
    packets.append(
        AskPacket(
            flags=PacketFlag.DATA,
            task_id=1,
            src="hq2",
            dst="h1",
            channel_index=0,
            seq=0,
            bitmap=1,
            slots=(Slot(b"xy", 4),) + (None,) * (cfg.num_aas - 1),
        )
    )
    _assert_equivalent(scalar, vector, packets)
    # Both engines must read the exotic key back out byte-identically.
    _drain_state(scalar, vector)


def test_region_exhausted_lane_reports_reason():
    cfg, scalar, vector = _pair(max_channels=4)
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)  # 8 distinct channels > 4 slots
    ]
    _assert_equivalent(scalar, vector, packets)


def test_restore_wipes_soa_state_like_a_power_cycle():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    packets = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, packets)
    for sw in (scalar, vector):
        sw.crash()
        sw.restore()
        assert sw.boot_count == 1
        assert sw.needs_install
    import numpy as np

    assert not vector.pool.exotic
    assert int(np.count_nonzero(vector.pool.keys != -1)) == 0
    assert int(vector.dedup.max_seq.max()) == -1
    assert int(vector.dedup.seen.max()) == 0
    assert int(vector.dedup.pkt_state.max()) == 0
    # Dedup baselines can be re-installed channel by channel, identically.
    scalar.dedup.reinstall_channel(0, next_seq=5)
    vector.dedup.reinstall_channel(0, next_seq=5)
    w = cfg.window_size
    for residue in range(w):
        ctx = scalar.pipeline.begin_pass()
        assert int(vector.dedup.seen[residue]) == scalar.dedup.seen.control_read(residue)
    assert int(vector.dedup.max_seq[0]) == scalar.dedup.max_seq.control_read(0)


def test_oversize_long_bitmap_rides_the_spill_table():
    cfg, scalar, vector = _pair()
    scalar.controller.allocate_region(1)
    vector.controller.allocate_region(1)
    # A hostile LONG frame with 70 slots and a bitmap above 2**62 passes
    # ingress validation (LONG bitmaps are bounded by len(slots) only) but
    # cannot live in an int64 lane.
    nslots = 70
    slots = tuple(Slot(b"x%06d" % i, 1) for i in range(nslots))
    big = AskPacket(
        flags=PacketFlag.DATA | PacketFlag.LONG,
        task_id=1,
        src="hb",
        dst="h1",
        channel_index=0,
        seq=0,
        bitmap=(1 << nslots) - 1,
        slots=slots,
    )
    fill = [
        _data_packet(cfg, [(b"k%02d" % i, 1)], seq=0, src=f"h{i}")
        for i in range(VEC_MIN)
    ]
    _assert_equivalent(scalar, vector, fill + [big])
    # The duplicate arrives in a later batch as a vector-eligible lane in
    # spirit, but its oversize bitmap keeps it scalar; the recorded bitmap
    # must replay exactly.
    _assert_equivalent(scalar, vector, fill_second_window(cfg, VEC_MIN) + [big])


def fill_second_window(cfg, n):
    return [
        _data_packet(cfg, [(b"m%02d" % i, 1)], seq=1, src=f"h{i}") for i in range(n)
    ]


# ---------------------------------------------------------------------------
# Randomized differential property
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    batches=st.integers(1, 4),
    batch_size=st.integers(1, 40),
    num_keys=st.integers(1, 20),
    key_length=st.sampled_from([3, 6, 14]),
    shadow=st.booleans(),
)
def test_random_batches_match_the_scalar_oracle(
    seed, batches, batch_size, num_keys, key_length, shadow
):
    cfg = AskConfig.small(shadow_copy=shadow)
    scalar = AskSwitch(cfg, Simulator(), max_tasks=4, max_channels=64)
    vector = VectorizedAskSwitch(cfg, Simulator(), max_tasks=4, max_channels=64)
    scalar.controller.allocate_region(1, size=4)
    vector.controller.allocate_region(1, size=4)
    rng = random.Random(seed)
    keys = [("k%0*d" % (key_length - 1, i)).encode() for i in range(num_keys)]
    next_seq = {}
    for _ in range(batches):
        packets = []
        for _ in range(batch_size):
            src = f"h{rng.randrange(12)}"
            roll = rng.random()
            if roll < 0.05:
                packets.append(swap_packet(1, "h1", "switch", epoch=rng.randrange(2)))
                continue
            picked = rng.sample(keys, min(len(keys), rng.randrange(1, 4)))
            tuples = [(key, rng.randrange(0, 2**20)) for key in picked]
            payloads, _ = pack_stream(tuples, cfg)
            for payload in payloads:
                if roll < 0.15 and next_seq.get(src):  # retransmission
                    seq = rng.randrange(next_seq[src])
                else:
                    seq = next_seq.get(src, 0)
                    next_seq[src] = seq + 1
                flags = PacketFlag.DATA | (
                    PacketFlag.LONG if payload.is_long else PacketFlag(0)
                )
                packets.append(
                    AskPacket(
                        flags=flags,
                        task_id=1,
                        src=src,
                        dst="h1",
                        channel_index=0,
                        seq=seq,
                        bitmap=payload.bitmap,
                        slots=payload.slots,
                    )
                )
        expected = _scalar_outcomes(scalar, packets)
        got = vector.program.process_batch(packets)
        for pos, (want, have) in enumerate(zip(expected, got)):
            if isinstance(want, str):
                assert have == want, f"packet {pos}"
            else:
                assert have.action is want.action, f"packet {pos}"
                assert have.emit == want.emit, f"packet {pos}"
        assert _stats_dict(vector) == _stats_dict(scalar)
    for part in (0, 1) if shadow else (0,):
        assert scalar.controller.fetch_and_reset(1, part) == vector.controller.fetch_and_reset(1, part)
