"""Tests for the mini MapReduce engine and its cost model."""

import pytest

from repro.apps.mapreduce.costs import Backend, MapReduceCostModel, MapReduceSpec
from repro.apps.mapreduce.engine import run_wordcount
from repro.apps.mapreduce.wordcount import mapper_stream, wordcount_streams
from repro.net.fault import FaultModel
from repro.workloads.datasets import get_dataset
from repro.workloads.stream import exact_aggregate, merge_results


# ---------------------------------------------------------------------------
# Workload generation
# ---------------------------------------------------------------------------
def test_mapper_stream_shares_global_key_space():
    a = mapper_stream(0, 500, distinct_keys=50)
    b = mapper_stream(1, 500, distinct_keys=50)
    keys_a = {k for k, _ in a}
    keys_b = {k for k, _ in b}
    assert keys_a & keys_b  # WordCount: mappers count the same words


def test_mapper_streams_differ_by_id():
    assert mapper_stream(0, 100, 50) != mapper_stream(1, 100, 50)


def test_wordcount_streams_shape():
    streams = wordcount_streams(3, 2, 100, 50)
    assert set(streams) == {"m0", "m1", "m2"}
    assert all(len(s) == 200 for s in streams.values())


def test_wordcount_streams_can_use_a_corpus():
    corpus = get_dataset("yelp", 300)
    streams = wordcount_streams(2, 1, 50, 0, corpus=corpus)
    vocab = set(corpus.vocabulary)
    assert all(k in vocab for s in streams.values() for k, _ in s)


# ---------------------------------------------------------------------------
# Functional engine
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_streams():
    return wordcount_streams(3, 2, 300, distinct_keys=128)


def test_all_backends_produce_identical_results(small_streams):
    reports = {
        backend: run_wordcount(small_streams, backend, reducers_per_machine=1)
        for backend in ("ask", "spark", "spark_shm", "spark_rdma")
    }
    reference = merge_results(
        [exact_aggregate(s, 32) for s in small_streams.values()], 32
    )
    for backend, report in reports.items():
        assert report.result == reference, backend


def test_ask_backend_absorbs_traffic_on_the_switch(small_streams):
    report = run_wordcount(small_streams, "ask", reducers_per_machine=1)
    assert report.switch_aggregation_ratio > 0.5
    assert report.switch_acked_packets > 0


def test_ask_backend_survives_faults(small_streams):
    fault = FaultModel(loss_rate=0.05, duplicate_rate=0.03, reorder_rate=0.05, seed=13)
    lossy = run_wordcount(small_streams, "ask", reducers_per_machine=1, fault=fault)
    clean = run_wordcount(small_streams, "spark", reducers_per_machine=1)
    assert lossy.result == clean.result


def test_more_reducers_same_result(small_streams):
    one = run_wordcount(small_streams, "ask", reducers_per_machine=1)
    two = run_wordcount(small_streams, "ask", reducers_per_machine=2)
    assert one.result == two.result
    assert two.reducers == 6


def test_unknown_backend_rejected(small_streams):
    with pytest.raises(ValueError):
        run_wordcount(small_streams, "flink")


# ---------------------------------------------------------------------------
# Cost model (Figs. 10/11 anchors)
# ---------------------------------------------------------------------------
def test_ask_mapper_tct_matches_paper():
    times = MapReduceCostModel().times(
        MapReduceSpec(tuples_per_mapper=100_000_000), Backend.ASK
    )
    assert times.mapper_tct_s == pytest.approx(1.67, abs=0.15)


def test_baseline_mapper_tct_matches_paper_band():
    for backend in (Backend.SPARK, Backend.SPARK_SHM, Backend.SPARK_RDMA):
        times = MapReduceCostModel().times(
            MapReduceSpec(tuples_per_mapper=100_000_000), backend
        )
        assert 15.0 <= times.mapper_tct_s <= 19.5


def test_ask_reducers_run_longer_than_baselines():
    cost = MapReduceCostModel()
    spec = MapReduceSpec(tuples_per_mapper=100_000_000)
    ask = cost.times(spec, Backend.ASK)
    spark = cost.times(spec, Backend.SPARK)
    assert ask.reducer_tct_s > spark.reducer_tct_s


def test_jct_reduction_in_paper_band():
    cost = MapReduceCostModel()
    for tuples in (50_000_000, 100_000_000, 200_000_000):
        spec = MapReduceSpec(tuples_per_mapper=tuples)
        ask = cost.times(spec, Backend.ASK).jct_s
        for backend in (Backend.SPARK, Backend.SPARK_SHM, Backend.SPARK_RDMA):
            base = cost.times(spec, backend).jct_s
            reduction = 1 - ask / base
            assert 0.65 <= reduction <= 0.78  # paper: 67.3%–75.1%


def test_spark_variants_differ_only_marginally():
    # §5.5: SparkRDMA and SparkSHM give no significant gain over Spark.
    cost = MapReduceCostModel()
    spec = MapReduceSpec(tuples_per_mapper=100_000_000)
    jcts = [
        cost.times(spec, b).jct_s
        for b in (Backend.SPARK, Backend.SPARK_SHM, Backend.SPARK_RDMA)
    ]
    assert (max(jcts) - min(jcts)) / max(jcts) < 0.02


def test_ask_backend_has_no_spark_variant():
    with pytest.raises(ValueError):
        Backend.ASK.spark_variant


def test_spec_totals():
    spec = MapReduceSpec()
    assert spec.total_mappers == 96
    assert spec.total_reducers == 96
    assert spec.total_tuples == 96 * spec.tuples_per_mapper
