"""Tests for the training substrate: value-stream adaptation and Fig. 12."""

import numpy as np
import pytest

from repro.apps.training.allreduce import ask_allreduce, tensor_to_tuples, tuples_to_tensor
from repro.apps.training.models import MODELS, get_model
from repro.apps.training.ps import TrainingSystem, images_per_second, run_functional_training
from repro.core.config import AskConfig
from repro.core.service import AskService


# ---------------------------------------------------------------------------
# Tensor <-> tuple adaptation
# ---------------------------------------------------------------------------
def test_tensor_to_tuples_uses_index_keys():
    tuples = tensor_to_tuples([10, 20, 30])
    assert tuples == [
        ((0).to_bytes(4, "little"), 10),
        ((1).to_bytes(4, "little"), 20),
        ((2).to_bytes(4, "little"), 30),
    ]


def test_roundtrip_including_negative_values():
    tensor = [5, -3, 0, -(2**20)]
    encoded = {
        k: v & 0xFFFFFFFF for k, v in tensor_to_tuples(tensor)
    }
    decoded = tuples_to_tensor(encoded, 4)
    assert decoded.tolist() == tensor


def test_missing_indices_decode_to_zero():
    decoded = tuples_to_tensor({(2).to_bytes(4, "little"): 9}, 4)
    assert decoded.tolist() == [0, 0, 9, 0]


def test_out_of_bounds_index_rejected():
    with pytest.raises(ValueError):
        tuples_to_tensor({(9).to_bytes(4, "little"): 1}, 4)


def test_allreduce_sums_across_workers():
    service = AskService(AskConfig.small(aggregators_per_aa=512), hosts=3)
    result = ask_allreduce(
        service,
        {"h0": [1, 2, 3, -4], "h1": [10, -20, 30, 40]},
        receiver="h2",
    )
    assert result.tolist() == [11, -18, 33, 36]


def test_allreduce_requires_aligned_tensors():
    service = AskService(AskConfig.small(), hosts=3)
    with pytest.raises(ValueError):
        ask_allreduce(service, {"h0": [1], "h1": [1, 2]})


def test_functional_training_matches_numpy(monkeypatch):
    rng_check = np.random.default_rng(42)
    expected_rounds = []
    for _ in range(2):
        grads = [rng_check.integers(-1000, 1000, size=64) for _ in range(2)]
        expected_rounds.append(sum(grads))
    sums = run_functional_training(workers=2, elements=64, iterations=2, seed=42)
    for got, expected in zip(sums, expected_rounds):
        assert got.tolist() == expected.tolist()


# ---------------------------------------------------------------------------
# Model catalog and throughput model (Fig. 12)
# ---------------------------------------------------------------------------
def test_model_catalog_matches_torchvision_parameter_counts():
    assert get_model("resnet50").parameters == 25_557_032
    assert get_model("vgg16").parameters == 138_357_544
    assert set(MODELS) == {
        "resnet50",
        "resnet101",
        "resnet152",
        "vgg11",
        "vgg16",
        "vgg19",
    }


def test_unknown_model_rejected():
    with pytest.raises(KeyError):
        get_model("transformer")


def test_gradient_bytes_are_fp32():
    spec = get_model("resnet50")
    assert spec.gradient_bytes == spec.parameters * 4


def test_ina_systems_beat_host_ps_everywhere():
    for spec in MODELS.values():
        host = images_per_second(spec, TrainingSystem.BYTEPS)
        for system in (TrainingSystem.ASK, TrainingSystem.ATP, TrainingSystem.SWITCHML):
            assert images_per_second(spec, system) > host


def test_ask_and_atp_similar_switchml_slightly_behind():
    # §5.6's Fig. 12 shape.
    for name in ("vgg16", "vgg19"):
        spec = get_model(name)
        ask = images_per_second(spec, TrainingSystem.ASK)
        atp = images_per_second(spec, TrainingSystem.ATP)
        sml = images_per_second(spec, TrainingSystem.SWITCHML)
        assert abs(ask - atp) / atp < 0.05
        assert sml < ask
        assert sml > 0.8 * ask  # "slightly" — not dramatically


def test_communication_heavy_models_show_bigger_ina_gaps():
    resnet = get_model("resnet50")
    vgg = get_model("vgg19")

    def gap(spec):
        ask = images_per_second(spec, TrainingSystem.ASK)
        sml = images_per_second(spec, TrainingSystem.SWITCHML)
        return (ask - sml) / ask

    assert gap(vgg) > gap(resnet)


def test_throughput_scales_with_workers():
    spec = get_model("resnet50")
    assert images_per_second(spec, TrainingSystem.ASK, workers=16) == pytest.approx(
        2 * images_per_second(spec, TrainingSystem.ASK, workers=8)
    )


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        images_per_second(get_model("vgg11"), TrainingSystem.ASK, workers=0)
