"""Tests for the RDD-style dataflow API (the Spark-plugin analogue)."""

from collections import Counter

import pytest

from repro.apps.mapreduce.rdd import Dataset
from repro.core.config import AskConfig
from repro.net.fault import FaultModel


def test_parallelize_deals_round_robin():
    ds = Dataset.parallelize(range(10), machines=3)
    assert ds.count() == 10
    assert sorted(ds.collect()) == list(range(10))


def test_transformations_are_lazy_and_pure():
    calls = []

    def spy(x):
        calls.append(x)
        return x * 2

    ds = Dataset.parallelize([1, 2, 3], machines=1)
    mapped = ds.map(spy)
    assert calls == []  # nothing ran yet
    assert mapped.collect() == [2, 4, 6]
    # The base dataset is untouched (derivation, not mutation).
    assert ds.collect() == [1, 2, 3]


def test_map_filter_flatmap_compose():
    ds = (
        Dataset.parallelize(["a b", "c d e", "f"], machines=2)
        .flat_map(str.split)
        .filter(lambda w: w != "c")
        .map(str.upper)
    )
    assert sorted(ds.collect()) == ["A", "B", "D", "E", "F"]


def test_wordcount_via_reduce_by_key():
    text = ["the cat sat", "the cat", "the"]
    counts = (
        Dataset.parallelize(text, machines=3)
        .flat_map(str.split)
        .map(lambda w: (w.encode(), 1))
        .reduce_by_key()
    )
    expected = Counter(w for line in text for w in line.split())
    assert counts == {w.encode(): c for w, c in expected.items()}


def test_count_by_value_convenience():
    words = [b"x", b"y", b"x", b"x"]
    counts = Dataset.parallelize(words, machines=2).count_by_value()
    assert counts == {b"x": 3, b"y": 1}


def test_reduce_by_key_survives_faults():
    fault = FaultModel(loss_rate=0.08, duplicate_rate=0.05, seed=11)
    stream = [(("k%02d" % (i % 12)).encode(), 1) for i in range(300)]
    counts = Dataset.parallelize(stream, machines=3).reduce_by_key(fault=fault)
    assert sum(counts.values()) == 300
    assert len(counts) == 12


def test_reduce_by_key_accepts_custom_config():
    counts = Dataset.parallelize([(b"a", 5)], machines=1).reduce_by_key(
        config=AskConfig.small(aggregators_per_aa=32), region_size=4
    )
    assert counts == {b"a": 5}


def test_reduce_by_key_rejects_non_bytes_keys():
    ds = Dataset.parallelize([("str-key", 1)], machines=1)
    with pytest.raises(TypeError, match="bytes"):
        ds.reduce_by_key()


def test_empty_partitions_are_fine():
    ds = Dataset.from_partitions({"m0": [(b"a", 1)], "m1": []})
    assert ds.reduce_by_key() == {b"a": 1}


def test_all_empty_returns_empty():
    ds = Dataset.from_partitions({"m0": [], "m1": []})
    assert ds.reduce_by_key() == {}


def test_needs_a_partition():
    with pytest.raises(ValueError):
        Dataset.from_partitions({})
