"""Deterministic failure drills against the simulated backend.

Each drill arms an explicit (hand-written, not sampled) chaos schedule
against a live deployment and asserts the supervised-recovery contract:
the result stays bit-exact against the fault-free reference, and the
supervisor's event log shows the expected failover path.

Timing cheat-sheet (config used below): heartbeat 50 µs → ticks at
50 k, 100 k, ... ns; lease = 3 heartbeats = 150 k ns; control-plane
re-install latency 10 k ns.
"""

import json

import pytest

from repro.chaos import ChaosEvent, ChaosOrchestrator, ChaosSchedule
from repro.core.config import AskConfig
from repro.core.errors import TaskFailedError
from repro.core.results import reference_aggregate
from repro.core.service import AskService
from repro.core.task import TaskPhase


def _service(**overrides):
    return AskService(
        AskConfig.small(
            failure_detection=True, heartbeat_interval_us=50.0, **overrides
        ),
        hosts=3,
    )


def _streams():
    """Hot keys plus a long distinct-key tail: the tail keeps the stream
    in flight well past the fault window (hot keys alone pack into a
    handful of frames and finish before anything breaks)."""
    return {
        "h0": [(b"hot", 1)] * 50
        + [(f"key-{i:04d}".encode(), i) for i in range(1200)],
        "h1": [(b"hot", 3)] * 50
        + [(f"key-{i:04d}".encode(), 1) for i in range(800)],
    }


def _expected(service, streams):
    return reference_aggregate(
        {h: list(s) for h, s in streams.items()}, service.config.value_mask
    )


def _run_drill(service, events, streams=None):
    schedule = ChaosSchedule(seed=0, horizon_ns=500_000, events=tuple(events))
    orchestrator = ChaosOrchestrator(service.deployment, schedule)
    orchestrator.arm()
    streams = streams if streams is not None else _streams()
    expected = _expected(service, streams)
    task = service.submit(streams, receiver="h2")
    service.run_to_completion()
    service.run()  # drain trailing chaos/reinstall events off the heap
    assert task.result is not None
    assert task.result.values == expected, "degraded run diverged from reference"
    return task, orchestrator


# ---------------------------------------------------------------------------
# Switch reboot: degrade-to-bypass, re-install, re-enabled aggregation
# ---------------------------------------------------------------------------
def test_switch_reboot_drill_completes_via_bypass_and_reenables_offload():
    service = _service()
    task, orchestrator = _run_drill(
        service,
        [
            ChaosEvent(30_000, "crash", "switch"),
            ChaosEvent(80_000, "restore", "switch"),
        ],
    )
    # The degraded window shipped raw tuples end-to-end.
    assert task.stats.bypass_packets_sent > 0
    assert task.stats.bypass_packets_received > 0
    kinds = [e["kind"] for e in service.supervisor.events]
    assert "switch-reboot-observed" in kinds
    assert "switch-reinstalled" in kinds
    assert "task-restarted" in kinds
    assert service.supervisor.reinstalls == 1
    assert not service.switch.needs_install

    # The degradation report pairs the outage with its re-install.
    report = orchestrator.report(tasks=service.tasks)
    assert report.totals["faults_injected"] == 1
    assert report.totals["switch_reboots"] == 1
    assert report.totals["bypass_packets_sent"] > 0
    latencies = report.recovery_latencies_ns[service.switch.name]
    assert len(latencies) == 1 and latencies[0] > 0
    assert json.loads(report.to_json())["seed"] == 0
    assert "switch-reinstalled" in report.summary()

    # Post-heal, in-network aggregation is back: a second task offloads
    # onto the switch again (no bypass, offload counters move).
    aggregated_before = service.switch.program.stats.tuples_aggregated
    second = service.submit({"h0": [(b"again", 1)] * 120}, receiver="h2")
    service.run_to_completion()
    assert second.result is not None and second.result[b"again"] == 120
    assert service.switch.program.stats.tuples_aggregated > aggregated_before
    assert second.stats.bypass_packets_sent == 0


def test_switch_lease_lapse_drill_bypasses_while_dark():
    # Down well past the 150 k ns lease (the supervisor first observes the
    # node at its 50 k tick, so the lapse fires at the 250 k tick): the
    # lapse itself — not the reboot — must already degrade the rack and
    # restart its tasks.
    service = _service()
    task, _ = _run_drill(
        service,
        [
            ChaosEvent(30_000, "crash", "switch"),
            ChaosEvent(300_000, "restore", "switch"),
        ],
    )
    kinds = [e["kind"] for e in service.supervisor.events]
    assert "switch-lease-lapsed" in kinds
    assert "switch-reinstalled" in kinds
    assert task.stats.bypass_packets_sent > 0
    assert not service.switch.needs_install


# ---------------------------------------------------------------------------
# Daemon crashes: supervised recovery from the reliability layer
# ---------------------------------------------------------------------------
def test_sender_daemon_crash_drill_rebuilds_retransmission_schedule():
    service = _service()
    task, _ = _run_drill(
        service,
        [
            ChaosEvent(40_000, "crash", "h0"),
            ChaosEvent(100_000, "restore", "h0"),
        ],
    )
    daemon = service.daemons["h0"]
    assert daemon.crashes == 1
    # ACKs arriving at the dead process were lost; the rebuilt timers
    # re-drove the unacked entries.
    assert daemon.dropped_while_down > 0
    assert task.stats.retransmissions > 0


def test_receiver_daemon_crash_drill_resumes_swaps():
    # Down 100 k ns < the lease: no reclaim — the restarted receiver picks
    # its accumulator back up and the switch's swap retries deliver.
    service = _service()
    task, _ = _run_drill(
        service,
        [
            ChaosEvent(40_000, "crash", "h2"),
            ChaosEvent(140_000, "restore", "h2"),
        ],
    )
    assert service.daemons["h2"].crashes == 1
    assert service.supervisor.reclaims == 0
    assert task.phase is TaskPhase.COMPLETE


# ---------------------------------------------------------------------------
# Receiver lease lapse: reclaim, switchless readoption
# ---------------------------------------------------------------------------
def test_receiver_lease_lapse_drill_reclaims_regions_and_readopts():
    service = _service()
    task, _ = _run_drill(
        service,
        [
            ChaosEvent(30_000, "crash", "h2"),
            ChaosEvent(400_000, "restore", "h2"),
        ],
    )
    kinds = [e["kind"] for e in service.supervisor.events]
    assert "regions-reclaimed" in kinds
    assert "daemon-readopted" in kinds
    assert "task-readopted" in kinds
    assert service.supervisor.reclaims >= 1
    # The readopted task completed *switchless*: replayed in bypass, its
    # reclaimed regions never re-allocated.
    assert task.stats.bypass_packets_received > 0
    assert not service.control.has_regions(task.task_id)

    # The channel's switch dedup state was re-baselined when the bypass
    # job finished: the next task aggregates in-network again.
    aggregated_before = service.switch.program.stats.tuples_aggregated
    follow_up = service.submit(
        {"h0": [(b"post", 2)] * 150, "h1": [(b"post", 1)] * 100}, receiver="h2"
    )
    service.run_to_completion()
    assert follow_up.result is not None and follow_up.result[b"post"] == 400
    assert service.switch.program.stats.tuples_aggregated > aggregated_before


# ---------------------------------------------------------------------------
# Give-up deadline: loud failure, reusable service
# ---------------------------------------------------------------------------
def test_give_up_drill_fails_loudly_and_frees_capacity():
    service = _service(give_up_timeout_us=300.0)
    schedule = ChaosSchedule(
        seed=0,
        horizon_ns=500_000,
        events=(ChaosEvent(30_000, "crash", "h2"),),  # never restored
    )
    ChaosOrchestrator(service.deployment, schedule).arm()
    task = service.submit(_streams(), receiver="h2")
    with pytest.raises(TaskFailedError, match="give-up deadline"):
        service.run_to_completion()
    assert task.phase is TaskPhase.FAILED
    assert task.failure_reason and "h2" in task.failure_reason
    assert service.supervisor.give_up_failures >= 1
    # Capacity was not held hostage: regions freed, service reusable.
    assert not service.control.has_regions(task.task_id)
    survivor = service.submit({"h0": [(b"alive", 1)] * 60}, receiver="h1")
    service.run_to_completion()
    assert survivor.result is not None and survivor.result[b"alive"] == 60


# ---------------------------------------------------------------------------
# Partitions: pure loss, healed by retransmission alone
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("target", ["h0", "h2", "switch"])
def test_partition_drill_heals_by_retransmission(target):
    service = _service()
    task, orchestrator = _run_drill(
        service,
        [
            ChaosEvent(30_000, "partition", target),
            ChaosEvent(100_000, "heal", target),
        ],
    )
    report = orchestrator.report(tasks=service.tasks)
    dropped = (
        report.totals["frames_dropped_by_partition"]
        + report.totals["frames_dropped_at_down_nodes"]
    )
    assert dropped > 0, "the partition never cut a frame"
    assert task.stats.retransmissions > 0
    # A partition is not a failure: no restart, no bypass, no reclaim.
    assert service.supervisor.task_restarts == 0
    assert service.supervisor.reclaims == 0


# ---------------------------------------------------------------------------
# Gray failure: slow-is-the-new-dead route-around and re-adoption
# ---------------------------------------------------------------------------
def test_gray_slow_switch_drill_routes_around_then_readopts():
    # 30 µs links make the clean round trip ~61 µs; the 4x slow window
    # inflates it to ~244 µs, far past the 100 µs fixed RTO — but every
    # heartbeat still arrives (late), so the lease never lapses.  The
    # supervisor must convict the switch on timeout evidence alone,
    # degrade its subtree to bypass, and re-adopt after the revive.
    service = AskService(
        AskConfig.small(
            failure_detection=True,
            heartbeat_interval_us=50.0,
            link_latency_ns=30_000,
            gray_detection=True,
        ),
        hosts=3,
    )
    schedule = ChaosSchedule(
        seed=0,
        horizon_ns=3_000_000,
        events=(
            ChaosEvent(150_000, "slow", "switch"),
            ChaosEvent(600_000, "revive", "switch"),
        ),
    ).check_windows()
    orchestrator = ChaosOrchestrator(service.deployment, schedule)
    orchestrator.arm()
    streams = _streams()
    expected = _expected(service, streams)
    task = service.submit(streams, receiver="h2")
    service.run_to_completion()
    service.run()  # drain the revive and the post-calm re-adoption
    assert task.result is not None
    assert task.result.values == expected

    # Everything stayed alive — no lease lapsed, no node was declared
    # dead — yet the switch was routed around on timeout evidence...
    kinds = [e["kind"] for e in service.supervisor.events]
    assert "gray-suspected" in kinds
    assert "switch-lease-lapsed" not in kinds
    assert service.supervisor.gray_routearounds >= 1
    assert task.stats.timeouts > 0
    assert task.stats.bypass_packets_sent > 0
    # ...and re-adopted once the path calmed down.
    assert "gray-readopted" in kinds
    assert service.supervisor.gray_readoptions >= 1
    assert not service.switch.needs_install

    # The degradation report tells the same story.
    report = orchestrator.report(tasks=service.tasks)
    assert report.gray["gray_faults_injected"] == 1
    assert report.gray["gray_routearounds"] >= 1
    assert report.gray["timeouts"] > 0
    assert "gray" in report.summary()


# ---------------------------------------------------------------------------
# Orchestrator contract
# ---------------------------------------------------------------------------
def test_orchestrator_rejects_unsupervised_deployments():
    service = AskService(AskConfig.small(), hosts=2)
    schedule = ChaosSchedule(
        seed=0, horizon_ns=1000, events=(ChaosEvent(0, "crash", "h0"),)
    )
    with pytest.raises(ValueError, match="unsupervised"):
        ChaosOrchestrator(service.deployment, schedule)
    # ... unless the caller explicitly opts out of recovery.
    ChaosOrchestrator(service.deployment, schedule, require_supervisor=False)


def test_orchestrator_rejects_unknown_targets_and_double_arm():
    service = _service()
    bad = ChaosSchedule(
        seed=0, horizon_ns=1000, events=(ChaosEvent(0, "crash", "h9"),)
    )
    with pytest.raises(KeyError, match="h9"):
        ChaosOrchestrator(service.deployment, bad)
    good = ChaosSchedule(
        seed=0, horizon_ns=1000, events=(ChaosEvent(0, "partition", "h0"),)
    )
    orchestrator = ChaosOrchestrator(service.deployment, good)
    orchestrator.arm()
    with pytest.raises(RuntimeError, match="already armed"):
        orchestrator.arm()
