"""The abusive-tenant overload drill and its degradation accounting.

The drill itself (``repro chaos --overload``) asserts tenant isolation
internally — well-behaved tenants complete bit-exact and undegraded
while the abusive tenant's flood waits, degrades, or is bounced at the
queue bound.  These tests run it on both backends, pin its determinism
(serial and parallel-runner payloads identical), and check that the
degradation report's admission section balances.
"""

import contextlib
import io

from repro.chaos.schedule import ChaosSchedule
from repro.cli import _run_overload_chaos
from repro.perf import parallel


def run_drill(backend, seed):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = _run_overload_chaos(backend, seed, None)
    return status, buffer.getvalue()


def test_overload_drill_holds_isolation_on_sim():
    status, out = run_drill("sim", 0)
    assert status == 0
    assert "isolation held" in out
    # The queue bound bit: a burst of 6 against a limit of 4.
    assert "rejected_full=2" in out
    # Both well-behaved tenants stayed on the switch path.
    assert out.count("degraded=False") == 2


def test_overload_drill_holds_isolation_on_asyncio():
    status, out = run_drill("asyncio", 0)
    assert status == 0
    assert "isolation held" in out
    assert "rejected_full=2" in out


def test_overload_drill_payload_is_deterministic():
    job = parallel.Job("chaos-overload", "chaos-overload", seed=7)
    first = parallel.run_job(job)
    second = parallel.run_job(job)
    assert first.ok, first.error
    assert second.ok, second.error
    assert first.payload == second.payload


def test_report_admission_section_balances():
    """Every queued task is accounted for exactly once:
    queued == granted + degraded + cancelled + rejected_deadline + waiting
    (rejected_full tasks never entered the queue and stay separate)."""
    import dataclasses

    from repro.chaos.report import DegradationReport
    from repro.core.config import AskConfig
    from repro.core.service import AskService

    config = dataclasses.replace(
        AskConfig.small(),
        admission_control=True,
        admission_retry_us=20.0,
        admission_backoff_cap_us=160.0,
        admission_deadline_us=120.0,
        admission_queue_limit=1,
    )
    service = AskService(config, hosts=3)
    hog = service.open_stream(["h0"], receiver="h2", region_size=32)
    service.run(until=service.clock.now + 50_000)
    granted = service.submit(
        {"h1": [(b"a", 1)] * 10}, receiver="h2", region_size=8
    )
    rejected = service.submit(
        {"h1": [(b"b", 1)] * 10}, receiver="h2", region_size=8
    )
    # granted's deadline lapses first (the hog holds everything), so it
    # degrades; rejected bounced at the queue bound of 1.
    service.run(until=service.clock.now + 500_000)
    hog.close()
    service.run_to_completion()

    schedule = ChaosSchedule(seed=0, horizon_ns=1, events=())
    report = DegradationReport.build(
        service.deployment, schedule, injected=[], tasks=service.tasks
    )
    adm = report.admission
    assert adm  # the deployment runs with admission control
    assert adm["queued"] == (
        adm["granted"] + adm["degraded"] + adm["cancelled"]
        + adm["rejected_deadline"] + adm["waiting"]
    )
    assert adm["degraded"] == 1 and adm["rejected_full"] == 1
    assert report.totals["admission_queued"] == adm["queued"]
    assert report.totals["admission_rejected"] == (
        adm["rejected_full"] + adm["rejected_deadline"]
    )
    # The summary carries the balance line and the JSON round-trips.
    assert "admission:" in report.summary()
    assert '"admission"' in report.to_json()
    assert granted.stats.degraded_to_bypass
    assert rejected.phase.value == "failed"
