"""Tests for seed-deterministic chaos schedules."""

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule
from repro.chaos.schedule import RECOVERY_OF

HOSTS = ["h0", "h1", "h2"]
SWITCHES = ["switch"]


def test_same_seed_same_schedule():
    a = ChaosSchedule.generate(42, HOSTS, SWITCHES)
    b = ChaosSchedule.generate(42, HOSTS, SWITCHES)
    assert a == b
    assert a.events == b.events


def test_different_seeds_differ():
    schedules = {
        ChaosSchedule.generate(seed, HOSTS, SWITCHES).events for seed in range(20)
    }
    assert len(schedules) > 1


def test_every_fault_is_paired_with_recovery_inside_horizon():
    def count(schedule, kind, target):
        return sum(
            1 for e in schedule.events if e.kind == kind and e.target == target
        )

    for seed in range(50):
        schedule = ChaosSchedule.generate(seed, HOSTS, SWITCHES)
        assert all(0 <= e.at_ns <= schedule.horizon_ns for e in schedule.events)
        for target in schedule.targets():
            for fault, recovery in RECOVERY_OF.items():
                assert count(schedule, fault, target) == count(
                    schedule, recovery, target
                )


def test_events_are_time_sorted():
    for seed in range(20):
        schedule = ChaosSchedule.generate(seed, HOSTS, SWITCHES, max_faults=5)
        times = [e.at_ns for e in schedule.events]
        assert times == sorted(times)


def test_fault_count_and_targets():
    schedule = ChaosSchedule.generate(7, HOSTS, SWITCHES, max_faults=4)
    assert 1 <= schedule.fault_count <= 4
    assert len(schedule.events) == 2 * schedule.fault_count
    assert set(schedule.targets()) <= set(HOSTS) | set(SWITCHES)


def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError, match="unknown chaos event kind"):
        ChaosEvent(0, "meteor", "switch")


def test_negative_time_rejected():
    with pytest.raises(ValueError, match="past"):
        ChaosEvent(-1, "crash", "switch")


def test_generate_needs_targets():
    with pytest.raises(ValueError, match="at least one"):
        ChaosSchedule.generate(1, [], [])


# ---------------------------------------------------------------------------
# Gray kinds and window coalescing
# ---------------------------------------------------------------------------
def test_gray_kinds_generate_paired_and_validated():
    def count(schedule, kind, target):
        return sum(
            1 for e in schedule.events if e.kind == kind and e.target == target
        )

    for seed in range(50):
        schedule = ChaosSchedule.generate(
            seed, HOSTS, SWITCHES, kinds=("slow", "straggle", "flap")
        )
        assert schedule.gray_fault_count == schedule.fault_count >= 1
        for target in schedule.targets():
            for fault, recovery in RECOVERY_OF.items():
                assert count(schedule, fault, target) == count(
                    schedule, recovery, target
                )
        # generate's own output always passes window validation
        assert schedule.check_windows() is schedule


def test_straggle_on_a_switch_becomes_slow():
    # A switch has no daemon service loop; its gray failure is its links.
    for seed in range(50):
        schedule = ChaosSchedule.generate(
            seed, hosts=[], switches=SWITCHES, kinds=("straggle",)
        )
        kinds = {e.kind for e in schedule.events}
        assert "straggle" not in kinds and "unstraggle" not in kinds
        assert kinds <= {"slow", "revive"}


def test_same_kind_overlap_merges_into_one_window():
    from repro.chaos.schedule import _coalesce

    windows = []
    _coalesce(windows, 100, 300, "slow", "h0", horizon_ns=1000)
    _coalesce(windows, 200, 500, "slow", "h0", horizon_ns=1000)
    assert windows == [(100, 500, "slow", "h0")]


def test_different_kind_overlap_queues_after_recovery():
    from repro.chaos.schedule import _coalesce

    windows = []
    _coalesce(windows, 100, 300, "crash", "h0", horizon_ns=1000)
    _coalesce(windows, 200, 400, "slow", "h0", horizon_ns=1000)
    # The slow window keeps its 200ns duration, starting strictly after
    # the crash recovers (+1 so they never share an instant).
    assert windows == [(100, 300, "crash", "h0"), (301, 501, "slow", "h0")]


def test_queued_window_is_clamped_to_the_horizon():
    from repro.chaos.schedule import _coalesce

    windows = []
    _coalesce(windows, 100, 990, "crash", "h0", horizon_ns=1000)
    _coalesce(windows, 500, 800, "slow", "h0", horizon_ns=1000)
    # Queued after the crash recovery (+1) and clamped to the horizon.
    assert windows == [(100, 990, "crash", "h0"), (991, 1000, "slow", "h0")]


def test_queued_window_with_no_horizon_room_is_dropped():
    from repro.chaos.schedule import _coalesce

    windows = []
    _coalesce(windows, 100, 999, "crash", "h0", horizon_ns=1000)
    _coalesce(windows, 500, 800, "slow", "h0", horizon_ns=1000)
    # Queued start would be 1000 == horizon: no room, both events vanish.
    assert windows == [(100, 999, "crash", "h0")]


def test_overlap_on_different_targets_is_untouched():
    from repro.chaos.schedule import _coalesce

    windows = []
    _coalesce(windows, 100, 300, "crash", "h0", horizon_ns=1000)
    _coalesce(windows, 200, 400, "crash", "h1", horizon_ns=1000)
    assert windows == [(100, 300, "crash", "h0"), (200, 400, "crash", "h1")]


def test_check_windows_rejects_hand_built_overlap():
    from repro.core.errors import ChaosScheduleError

    schedule = ChaosSchedule(
        seed=1,
        horizon_ns=1000,
        events=(
            ChaosEvent(100, "slow", "h0"),
            ChaosEvent(200, "crash", "h0"),
            ChaosEvent(300, "revive", "h0"),
            ChaosEvent(400, "restore", "h0"),
        ),
    )
    with pytest.raises(ChaosScheduleError, match="overlap") as excinfo:
        schedule.check_windows()
    assert excinfo.value.target == "h0"


def test_check_windows_rejects_orphan_recovery():
    from repro.core.errors import ChaosScheduleError

    schedule = ChaosSchedule(
        seed=1,
        horizon_ns=1000,
        events=(ChaosEvent(100, "revive", "h0"),),
    )
    with pytest.raises(ChaosScheduleError, match="no open"):
        schedule.check_windows()


def test_check_windows_rejects_unclosed_window():
    from repro.core.errors import ChaosScheduleError

    schedule = ChaosSchedule(
        seed=1,
        horizon_ns=1000,
        events=(ChaosEvent(100, "slow", "h0"),),
    )
    with pytest.raises(ChaosScheduleError, match="never recovers"):
        schedule.check_windows()


def test_check_windows_accepts_disjoint_windows_and_chains():
    schedule = ChaosSchedule(
        seed=1,
        horizon_ns=1000,
        events=(
            ChaosEvent(100, "slow", "h0"),
            ChaosEvent(200, "revive", "h0"),
            ChaosEvent(300, "crash", "h0"),
            ChaosEvent(400, "restore", "h0"),
            ChaosEvent(150, "straggle", "h1"),
            ChaosEvent(900, "unstraggle", "h1"),
        ),
    )
    # events need not be pre-sorted for validation to make sense: the
    # schedule is frozen as given, so validate as given (time-sorted here).
    assert schedule.check_windows() is schedule
