"""Tests for seed-deterministic chaos schedules."""

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule
from repro.chaos.schedule import RECOVERY_OF

HOSTS = ["h0", "h1", "h2"]
SWITCHES = ["switch"]


def test_same_seed_same_schedule():
    a = ChaosSchedule.generate(42, HOSTS, SWITCHES)
    b = ChaosSchedule.generate(42, HOSTS, SWITCHES)
    assert a == b
    assert a.events == b.events


def test_different_seeds_differ():
    schedules = {
        ChaosSchedule.generate(seed, HOSTS, SWITCHES).events for seed in range(20)
    }
    assert len(schedules) > 1


def test_every_fault_is_paired_with_recovery_inside_horizon():
    def count(schedule, kind, target):
        return sum(
            1 for e in schedule.events if e.kind == kind and e.target == target
        )

    for seed in range(50):
        schedule = ChaosSchedule.generate(seed, HOSTS, SWITCHES)
        assert all(0 <= e.at_ns <= schedule.horizon_ns for e in schedule.events)
        for target in schedule.targets():
            for fault, recovery in RECOVERY_OF.items():
                assert count(schedule, fault, target) == count(
                    schedule, recovery, target
                )


def test_events_are_time_sorted():
    for seed in range(20):
        schedule = ChaosSchedule.generate(seed, HOSTS, SWITCHES, max_faults=5)
        times = [e.at_ns for e in schedule.events]
        assert times == sorted(times)


def test_fault_count_and_targets():
    schedule = ChaosSchedule.generate(7, HOSTS, SWITCHES, max_faults=4)
    assert 1 <= schedule.fault_count <= 4
    assert len(schedule.events) == 2 * schedule.fault_count
    assert set(schedule.targets()) <= set(HOSTS) | set(SWITCHES)


def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError, match="unknown chaos event kind"):
        ChaosEvent(0, "meteor", "switch")


def test_negative_time_rejected():
    with pytest.raises(ValueError, match="past"):
        ChaosEvent(-1, "crash", "switch")


def test_generate_needs_targets():
    with pytest.raises(ValueError, match="at least one"):
        ChaosSchedule.generate(1, [], [])
