"""End-to-end data integrity under injected corruption.

The tentpole property: with integrity checks enabled, *corruption is
indistinguishable from loss*.  Bit flips on the wire (asyncio backend) or
field mutations on packet objects (sim backend) are caught by the
checksum layer, dropped, counted, and healed by §3.3 retransmission — so
the final aggregate is bit-identical to the fault-free reference, and
the books balance: every injected corruption event that reached a
decoder shows up as a counted drop or a quarantine entry.

The combined drill stacks corruption windows on top of Gilbert–Elliott
burst loss and a switch reboot in one chaos schedule — the full fault
soup — and still demands exactness on both backends.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosOrchestrator, ChaosSchedule
from repro.chaos.schedule import ChaosEvent
from repro.core.config import AskConfig
from repro.core.packet import AskPacket, Slot
from repro.core.results import reference_aggregate
from repro.core.service import AskService
from repro.net.fault import CorruptedFrame, FaultModel, GilbertElliott


def _streams():
    return {
        "h0": [(b"hot", 1), (b"cold", 2)] * 40
        + [(f"key-{i:04d}".encode(), i) for i in range(900)],
        "h1": [(b"hot", 3)] * 40
        + [(f"key-{i:04d}".encode(), 1) for i in range(600)],
    }


def _expected(service, streams):
    return reference_aggregate(
        {h: list(s) for h, s in streams.items()}, service.config.value_mask
    )


def _robustness_books(deployment):
    nodes = list(deployment.daemons.values()) + list(deployment.switches.values())
    drops = sum(n.robustness.total for n in nodes)
    quarantined = sum(
        n.quarantine.admitted for n in nodes if hasattr(n, "quarantine")
    )
    return drops, quarantined


# ----------------------------------------------------------------------
# Sim backend: field-mutation corruption on every link
# ----------------------------------------------------------------------
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 10_000), rate=st.sampled_from([0.02, 0.08, 0.2]))
def test_corruption_is_indistinguishable_from_loss_on_sim(seed, rate):
    service = AskService(
        AskConfig.small(),
        hosts=3,
        fault=FaultModel(corrupt_rate=rate, seed=seed),
    )
    streams = _streams()
    expected = _expected(service, streams)
    result = service.aggregate(streams, receiver="h2")
    assert result.values == expected

    # The books balance: a pure-corruption model never loses a frame, so
    # every damaged frame reaches exactly one decoder and is refused
    # there.  (Sim corruption mutates fields behind a checksum-failed
    # wrapper, so nothing ever gets deep enough to be quarantined.)
    injected = service.fabric.corruption_injected
    drops, quarantined = _robustness_books(service.deployment)
    assert quarantined == 0
    assert drops == injected


def test_sim_corruption_actually_injects_and_heals():
    # Deterministic positive control for the property above: at a 20%
    # rate over ~thousands of frames the schedule must damage plenty.
    service = AskService(
        AskConfig.small(), hosts=3, fault=FaultModel(corrupt_rate=0.2, seed=7)
    )
    streams = _streams()
    expected = _expected(service, streams)
    result = service.aggregate(streams, receiver="h2")
    assert result.values == expected
    assert service.fabric.corruption_injected > 100
    assert result.stats.retransmissions > 0


def test_integrity_off_is_the_negative_control():
    # Without integrity checks a checksum-failed frame is unwrapped and
    # consumed as-is — the seed stack's behaviour.  This is the control
    # showing the drops above come from the integrity layer, not luck.
    service = AskService(AskConfig.small(integrity_checks=False), hosts=3)
    daemon = service.deployment.daemons["h2"]
    switch = service.switch
    pkt = AskPacket(
        0x1, 99, "h0", "h2", 0, 0, bitmap=0b1,
        slots=(Slot(b"k" * 10, 3),) + (None,) * 3,
    )
    daemon.receive(CorruptedFrame(pkt))
    switch.receive(CorruptedFrame(pkt))
    service.run()
    assert daemon.robustness.total == 0
    assert switch.robustness.get("checksum") == 0


# ----------------------------------------------------------------------
# Asyncio backend: bit-flip corruption on encoded datagrams
# ----------------------------------------------------------------------
@settings(
    max_examples=2,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 100))
def test_corruption_is_indistinguishable_from_loss_on_asyncio(seed):
    config = dataclasses.replace(
        AskConfig.small(), retransmit_timeout_us=2000
    )
    service = AskService(
        config,
        hosts=3,
        fault=FaultModel(corrupt_rate=0.05, seed=seed),
        backend="asyncio",
    )
    try:
        service.fabric.start()
        streams = _streams()
        expected = _expected(service, streams)
        task = service.submit(streams, receiver="h2")
        service.run_to_completion(timeout_s=90.0)
        assert task.result is not None
        assert task.result.values == expected
        # Drain: frames damaged right at completion are still in flight;
        # give the loop a moment to decode (and refuse) the stragglers.
        for _ in range(2):
            service.run(until=service.clock.now + 100_000_000)  # 100 ms
        injected = service.fabric.corruption_injected
        drops, quarantined = _robustness_books(service.deployment)
        # The books balance for everything that reached a decoder: every
        # refused datagram is attributed to exactly one node's counters.
        # ``injected`` is only an upper bound on a real kernel — under a
        # retransmission storm the UDP receive buffer overflows and sheds
        # damaged and clean datagrams alike (that *is* loss, and the clean
        # side of it is what the retransmissions above healed).
        assert drops + quarantined == service.fabric.malformed_frames
        assert 0 < drops + quarantined <= injected
    finally:
        service.close()


# ----------------------------------------------------------------------
# Combined drill: corruption + burst loss + a switch reboot, one run
# ----------------------------------------------------------------------
def _drill_schedule(horizon_scale: int) -> ChaosSchedule:
    """Corruption window on h0 overlapping a switch reboot; offsets are
    multiplied out so one shape serves both clocks."""
    s = horizon_scale
    return ChaosSchedule(
        seed=0,
        horizon_ns=250 * s,
        events=(
            ChaosEvent(20 * s, "corrupt", "h0"),
            ChaosEvent(40 * s, "crash", "switch"),
            ChaosEvent(120 * s, "restore", "switch"),
            ChaosEvent(160 * s, "cleanse", "h0"),
        ),
    )


def test_combined_fault_drill_on_sim():
    service = AskService(
        AskConfig.small(failure_detection=True, heartbeat_interval_us=50.0),
        hosts=3,
        fault=FaultModel(
            corrupt_rate=0.03,
            burst=GilbertElliott(p_good_bad=0.02, p_bad_good=0.3, loss_bad=0.5),
            seed=11,
        ),
    )
    schedule = _drill_schedule(horizon_scale=1_000)  # 250 µs horizon
    orchestrator = ChaosOrchestrator(service.deployment, schedule)
    orchestrator.arm()
    streams = _streams()
    expected = _expected(service, streams)
    task = service.submit(streams, receiver="h2")
    service.run_to_completion()
    service.run()  # drain recoveries scheduled past completion
    assert task.result is not None
    assert task.result.values == expected
    assert len(orchestrator.injected) == len(schedule.events)
    report = orchestrator.report(tasks=service.tasks)
    assert report.totals["switch_reboots"] >= 1
    # Both the per-link model and the chaos window injected corruption,
    # and every refused frame is on the books.
    assert report.totals["corrupted_frames_injected"] > 0
    assert report.totals["robustness_drops"] > 0


def test_combined_fault_drill_on_asyncio():
    config = dataclasses.replace(
        AskConfig.small(),
        retransmit_timeout_us=2000,
        failure_detection=True,
        heartbeat_interval_us=2_000.0,
    )
    service = AskService(
        config,
        hosts=3,
        fault=FaultModel(
            corrupt_rate=0.03,
            burst=GilbertElliott(p_good_bad=0.02, p_bad_good=0.3, loss_bad=0.5),
            seed=11,
        ),
        backend="asyncio",
    )
    try:
        schedule = _drill_schedule(horizon_scale=120_000)  # 30 ms horizon
        orchestrator = ChaosOrchestrator(service.deployment, schedule)
        service.fabric.start()
        orchestrator.arm()
        streams = _streams()
        expected = _expected(service, streams)
        task = service.submit(streams, receiver="h2")
        service.run_to_completion(timeout_s=90.0)
        assert task.result is not None
        assert task.result.values == expected
        report = orchestrator.report(tasks=service.tasks)
        assert report.totals["robustness_drops"] >= 0  # books exist either way
    finally:
        service.close()
