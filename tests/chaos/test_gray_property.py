"""Gray-failure properties: slow is never lossy, adaptive beats fixed.

The three proof obligations of the gray-failure domain:

* **Slow-only chaos loses nothing.**  Any sampled schedule of pure
  latency windows (no crash, no partition) leaves the aggregation
  bit-identical to the fault-free reference — same values, same
  ``values_sha256`` — on the simulated fabric and on real UDP alike.
* **The adaptive estimator is opt-in and invisible when off.**  With
  ``adaptive_rto=False`` (the default) no estimator is even constructed,
  and a fault-free adaptive-on run still completes on the identical
  event schedule (timers are cancelled before they can fire either way).
* **Under sustained >=4x latency inflation the adaptive estimator's
  spurious-retransmit count stays strictly below the fixed timeout's.**
  A fixed RTO shorter than the inflated round trip fires on every
  packet and re-fires on the backoff, so most retransmits answer ACKs
  already in flight; Jacobson/Karels converges onto the inflated path
  and stops paying.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosEvent, ChaosOrchestrator, ChaosSchedule
from repro.core.config import AskConfig
from repro.core.results import reference_aggregate, values_sha256
from repro.core.service import AskService


def _streams():
    # Hot keys + a distinct-key tail long enough that gray windows land
    # mid-stream (the tail dominates the run time on both backends).
    return {
        "h0": [(b"hot", 1), (b"cold", 2)] * 40
        + [(f"key-{i:04d}".encode(), i) for i in range(1200)],
        "h1": [(b"hot", 3)] * 40
        + [(f"key-{i:04d}".encode(), 1) for i in range(800)],
    }


def _expected(service, streams):
    return reference_aggregate(
        {h: list(s) for h, s in streams.items()}, service.config.value_mask
    )


# ---------------------------------------------------------------------------
# Slow-only chaos loses nothing
# ---------------------------------------------------------------------------
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 10_000))
def test_slow_only_chaos_loses_nothing_on_sim(seed):
    service = AskService(
        AskConfig.small(failure_detection=True, heartbeat_interval_us=50.0),
        hosts=3,
    )
    schedule = ChaosSchedule.generate(
        seed,
        hosts=service.hosts,
        switches=[service.switch.name],
        horizon_ns=250_000,
        min_down_ns=40_000,
        max_down_ns=200_000,
        kinds=("slow",),
    )
    orchestrator = ChaosOrchestrator(service.deployment, schedule)
    orchestrator.arm()
    streams = _streams()
    expected = _expected(service, streams)
    task = service.submit(streams, receiver="h2")
    service.run_to_completion()
    service.run()  # drain revives scheduled past task completion
    assert task.result is not None
    assert task.result.values == expected
    assert values_sha256(task.result.values) == values_sha256(expected)
    # Pure latency is never loss: the lease supervisor saw every
    # heartbeat (late, but alive), so nothing was declared dead and no
    # task restarted.
    assert task.stats.task_restarts == 0
    assert len(orchestrator.injected) == len(schedule.events)
    report = orchestrator.report(tasks=service.tasks)
    # All of the schedule's faults are gray: none counted as fail-stop.
    assert report.totals["faults_injected"] == 0
    assert report.gray["gray_faults_injected"] == schedule.fault_count
    assert schedule.gray_fault_count == schedule.fault_count


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 100))
def test_slow_only_chaos_loses_nothing_on_asyncio(seed):
    config = dataclasses.replace(
        AskConfig.small(),
        retransmit_timeout_us=2000,
        failure_detection=True,
        heartbeat_interval_us=2_000.0,
    )
    service = AskService(config, hosts=3, backend="asyncio")
    try:
        schedule = ChaosSchedule.generate(
            seed,
            hosts=service.hosts,
            switches=[service.switch.name],
            horizon_ns=30_000_000,
            min_down_ns=5_000_000,
            max_down_ns=20_000_000,
            kinds=("slow",),
        )
        orchestrator = ChaosOrchestrator(service.deployment, schedule)
        # Open the sockets before arming: fault offsets count from a live
        # rack, not from interpreter startup.
        service.fabric.start()
        orchestrator.arm()
        streams = _streams()
        expected = _expected(service, streams)
        task = service.submit(streams, receiver="h2")
        service.run_to_completion(timeout_s=90.0)
        assert task.result is not None
        assert task.result.values == expected
        assert values_sha256(task.result.values) == values_sha256(expected)
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Adaptive RTO is opt-in; off is byte-identical to before it existed
# ---------------------------------------------------------------------------
def test_adaptive_rto_off_builds_no_estimator_and_on_changes_nothing():
    def run(adaptive):
        service = AskService(
            AskConfig.small(adaptive_rto=adaptive), hosts=3
        )
        for daemon in service.deployment.daemons.values():
            for channel in daemon.channels:
                assert (channel.timers.estimator is not None) == adaptive
        streams = _streams()
        expected = _expected(service, streams)
        task = service.submit(streams, receiver="h2")
        service.run_to_completion()
        assert task.result is not None
        assert task.result.values == expected
        return task

    off = run(False)
    on = run(True)
    assert values_sha256(off.result.values) == values_sha256(on.result.values)
    # Fault-free, every timer is cancelled before firing regardless of
    # which delay it was armed with: the wire schedule is identical.
    for task in (off, on):
        assert task.stats.retransmissions == 0
        assert task.stats.timeouts == 0
        assert task.stats.spurious_retransmissions == 0
    assert off.stats.data_packets_sent == on.stats.data_packets_sent
    assert off.stats.completed_at_ns == on.stats.completed_at_ns


# ---------------------------------------------------------------------------
# Under >=4x inflation, adaptive strictly beats fixed on spurious resends
# ---------------------------------------------------------------------------
def _run_inflated(adaptive, slow_start_ns):
    """One sender through a switch whose links turn 4x slow mid-task.

    Geometry: link_latency 30us makes the clean round trip ~61us, under
    the 100us fixed RTO; the 4x window inflates it to ~244us, so the
    fixed timer fires at 100us and again at the 200us backoff while the
    real ACK is still in flight — every such ACK then lands faster after
    the last resend than the smallest clean RTT, branding the resends
    spurious.  The adaptive estimator backs off, catches one clean
    sample of the inflated path, and re-centers.
    """
    config = AskConfig.small(
        link_latency_ns=30_000,
        adaptive_rto=adaptive,
        rto_min_us=50.0,
        rto_max_us=10_000.0,
    )
    service = AskService(config, hosts=2)
    schedule = ChaosSchedule(
        seed=0,
        horizon_ns=60_000_000,
        events=(
            ChaosEvent(slow_start_ns, "slow", service.switch.name),
            ChaosEvent(50_000_000, "revive", service.switch.name),
        ),
    ).check_windows()
    orchestrator = ChaosOrchestrator(
        service.deployment, schedule, require_supervisor=False
    )
    orchestrator.arm()
    streams = {"h0": [(f"key-{i:04d}".encode(), i % 97 + 1) for i in range(400)]}
    expected = reference_aggregate(
        {h: list(s) for h, s in streams.items()}, service.config.value_mask
    )
    task = service.submit(streams, receiver="h1")
    service.run_to_completion()
    service.run()  # drain the revive event
    assert task.result is not None
    assert task.result.values == expected
    return task.stats


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(slow_start_us=st.integers(150, 400))
def test_adaptive_rto_spurious_strictly_below_fixed_under_inflation(
    slow_start_us,
):
    fixed = _run_inflated(False, slow_start_us * 1_000)
    adaptive = _run_inflated(True, slow_start_us * 1_000)
    # The fixed timeout misreads latency as loss on nearly every packet
    # of the slow era; the estimator must not.
    assert fixed.spurious_retransmissions > 0
    assert (
        adaptive.spurious_retransmissions < fixed.spurious_retransmissions
    )
    assert adaptive.timeouts < fixed.timeouts
