"""Randomized chaos: any sampled fault schedule, bit-exact results.

The property: for any seed-deterministic chaos schedule (crashes and
partitions with paired recoveries, against hosts and the switch), the
supervised deployment produces results bit-identical to the fault-free
reference aggregation — on the simulated fabric and on real UDP alike —
and the orchestrator's record accounts for every scheduled injection.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosOrchestrator, ChaosSchedule
from repro.core.config import AskConfig
from repro.core.results import reference_aggregate
from repro.core.service import AskService


def _streams():
    # Hot keys + a distinct-key tail long enough that faults land
    # mid-stream (the tail dominates the run time on both backends).
    return {
        "h0": [(b"hot", 1), (b"cold", 2)] * 40
        + [(f"key-{i:04d}".encode(), i) for i in range(1200)],
        "h1": [(b"hot", 3)] * 40
        + [(f"key-{i:04d}".encode(), 1) for i in range(800)],
    }


def _expected(service, streams):
    return reference_aggregate(
        {h: list(s) for h, s in streams.items()}, service.config.value_mask
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 10_000))
def test_chaos_schedules_stay_exact_on_sim(seed):
    service = AskService(
        AskConfig.small(failure_detection=True, heartbeat_interval_us=50.0),
        hosts=3,
    )
    schedule = ChaosSchedule.generate(
        seed,
        hosts=service.hosts,
        switches=[service.switch.name],
        horizon_ns=250_000,
        min_down_ns=40_000,
        max_down_ns=200_000,
    )
    orchestrator = ChaosOrchestrator(service.deployment, schedule)
    orchestrator.arm()
    streams = _streams()
    expected = _expected(service, streams)
    task = service.submit(streams, receiver="h2")
    service.run_to_completion()
    service.run()  # drain recoveries scheduled past task completion
    assert task.result is not None
    assert task.result.values == expected
    # Every scheduled event was applied and recorded.
    assert len(orchestrator.injected) == len(schedule.events)
    report = orchestrator.report(tasks=service.tasks)
    assert report.totals["faults_injected"] == schedule.fault_count


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 100))
def test_chaos_schedules_stay_exact_on_asyncio(seed):
    config = dataclasses.replace(
        AskConfig.small(),
        retransmit_timeout_us=2000,
        failure_detection=True,
        heartbeat_interval_us=2_000.0,
    )
    service = AskService(config, hosts=3, backend="asyncio")
    try:
        schedule = ChaosSchedule.generate(
            seed,
            hosts=service.hosts,
            switches=[service.switch.name],
            horizon_ns=30_000_000,
            min_down_ns=5_000_000,
            max_down_ns=20_000_000,
        )
        orchestrator = ChaosOrchestrator(service.deployment, schedule)
        # Open the sockets before arming: fault offsets count from a live
        # rack, not from interpreter startup.
        service.fabric.start()
        orchestrator.arm()
        streams = _streams()
        expected = _expected(service, streams)
        task = service.submit(streams, receiver="h2")
        service.run_to_completion(timeout_s=90.0)
        assert task.result is not None
        assert task.result.values == expected
    finally:
        service.close()
