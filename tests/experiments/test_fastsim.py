"""Tests for the fast occupancy simulator, including consistency with a
brute-force FCFS reference and with the full PISA switch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fastsim import _hash_ranks, simulate_occupancy


def brute_force_fcfs(ranks, num_aggregators, salt=17):
    """Reference: simulate every tuple against an explicit table."""
    cells = _hash_ranks(np.arange(max(ranks) + 1), num_aggregators, salt)
    table = {}
    aggregated = 0
    for rank in ranks:
        cell = int(cells[rank])
        owner = table.setdefault(cell, rank)
        if owner == rank:
            aggregated += 1
    return aggregated


def test_all_tuples_aggregate_with_plenty_of_memory():
    ranks = np.array([0, 1, 2, 0, 1, 2, 0])
    result = simulate_occupancy(ranks, num_aggregators=1024)
    assert result.aggregated == 7
    assert result.switch_ratio == 1.0


def test_single_aggregator_serves_first_key_only():
    ranks = np.array([3, 5, 3, 5, 3])
    result = simulate_occupancy(ranks, num_aggregators=1)
    assert result.aggregated == 3  # all of key 3, none of key 5


@settings(max_examples=100, deadline=None)
@given(
    ranks=st.lists(st.integers(0, 30), min_size=1, max_size=200),
    aggregators=st.integers(1, 16),
)
def test_fastsim_equals_brute_force(ranks, aggregators):
    arr = np.array(ranks, dtype=np.int64)
    fast = simulate_occupancy(arr, aggregators).aggregated
    assert fast == brute_force_fcfs(ranks, aggregators)


def test_shadow_epochs_reset_the_table():
    # Key 9 blocks key 5 in epoch 1; after the swap, 5 gets a fresh chance.
    salt = 17
    cells = _hash_ranks(np.arange(100), 1, salt)
    ranks = np.array([9, 5, 5, 5, 9, 5, 5, 5])
    without = simulate_occupancy(ranks, num_aggregators=2)
    with_prio = simulate_occupancy(ranks, num_aggregators=2, shadow_copy=True, swap_every=4)
    # With one cell per copy and epochs of 4: epoch1 owner 9 (1 tuple),
    # epoch2 owner 9... arrival order decides; prioritization must not lose
    # tuples relative to (copy-size) FCFS on skewed tails.
    assert with_prio.epochs == 2
    assert 0 < with_prio.aggregated <= len(ranks)
    assert without.epochs == 1


def test_prioritization_improves_skewed_cold_first_streams():
    # The Fig. 9 story: cold keys arrive first and squat; swapping gives
    # hot keys their chance back.
    rng = np.random.default_rng(1)
    cold = np.arange(2000)  # 2000 cold keys, once each
    hot = np.full(8000, 2001)  # one very hot key afterwards
    ranks = np.concatenate([cold, hot])
    plain = simulate_occupancy(ranks, 64)
    prio = simulate_occupancy(ranks, 64, shadow_copy=True, swap_every=512)
    assert prio.switch_ratio > plain.switch_ratio + 0.3


def test_requires_swap_threshold_with_shadow():
    with pytest.raises(ValueError):
        simulate_occupancy(np.array([1, 2]), 4, shadow_copy=True, swap_every=0)


def test_requires_positive_aggregators():
    with pytest.raises(ValueError):
        simulate_occupancy(np.array([1]), 0)


def test_distinct_key_count_reported():
    result = simulate_occupancy(np.array([1, 1, 2, 9]), 8)
    assert result.distinct_keys == 3
    assert result.tuples == 4


def test_fastsim_matches_full_switch_fcfs():
    """Consistency: the analytical fast path and the full PISA pipeline
    agree on which tuples the switch absorbs (FCFS, no shadow copies)."""
    from repro.core.config import AskConfig
    from repro.core.service import AskService

    # One short slot so the fast model's single-table abstraction applies.
    cfg = AskConfig(
        num_aas=1,
        aggregators_per_aa=8,
        medium_key_groups=0,
        shadow_copy=False,
        window_size=32,
        data_channels_per_host=1,
    )
    rng = np.random.default_rng(3)
    ranks = rng.integers(0, 40, size=300)
    stream = [(int(r).to_bytes(4, "little"), 1) for r in ranks]

    service = AskService(cfg, hosts=2)
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)

    # Reference with the *switch's* hash (address_hash of padded key).
    from repro.core.hashing import address_hash
    from repro.core.keyspace import pad_key

    table = {}
    aggregated = 0
    for rank in ranks:
        key = pad_key(int(rank).to_bytes(4, "little"), 4)
        cell = address_hash(key) % 8
        owner = table.setdefault(cell, key)
        if owner == key:
            aggregated += 1
    assert result.stats.tuples_aggregated_at_switch == aggregated
