"""Tests for the design-choice ablations (DESIGN.md §4)."""

import pytest

from repro.core.config import AskConfig
from repro.experiments.ablations import (
    aggregator_footprint,
    coalesced_lookup_rejects_x1y2,
    naive_segment_lookup,
    seen_memory_comparison,
)


def test_naive_segment_placement_has_the_x1y2_false_match():
    outcome = naive_segment_lookup()
    assert outcome["x1x2_matches"] is True
    # The paper's bug: X1Y2 validates although it was never inserted.
    assert outcome["false_match_x1y2"] is True


def test_coalesced_placement_does_not_alias_x1y2():
    assert coalesced_lookup_rejects_x1y2() is True


def test_random_placement_wastes_aggregators():
    cfg = AskConfig.small(shadow_copy=False, aggregators_per_aa=4096)
    # 8 distinct keys, each appearing 64 times in round-robin order: random
    # placement scatters each key over many AAs.
    stream = [(("k%d" % (i % 8)).encode(), 1) for i in range(512)]
    partitioned = aggregator_footprint(stream, cfg, randomized=False)
    randomized = aggregator_footprint(stream, cfg, randomized=True)
    assert partitioned == 8  # exactly one aggregator per key
    assert randomized >= 3 * partitioned  # single-key-multiple-spot waste


def test_partitioned_footprint_is_one_cell_per_key_always():
    cfg = AskConfig.small(shadow_copy=False)
    stream = [(("key%02d" % (i % 13)).encode(), 1) for i in range(200)]
    assert aggregator_footprint(stream, cfg, randomized=False) == 13


def test_compact_seen_halves_memory():
    comparison = seen_memory_comparison(window=256)
    assert comparison.compact_bits_per_channel == 256
    assert comparison.reference_bits_per_channel == 512
    assert comparison.memory_saving == pytest.approx(0.5)


def test_only_compact_seen_fits_the_access_budget():
    comparison = seen_memory_comparison()
    assert comparison.compact_accesses_per_pass == 1
    assert comparison.reference_accesses_per_pass > 1
