"""Smoke + shape tests for every experiment module (scaled parameters)."""

import pytest

from repro.experiments import (
    fig03_strawman,
    fig07_offload,
    fig08_multikey,
    fig09_prioritization,
    fig10_jct,
    fig11_tct,
    fig12_training,
    fig13_scalability,
    table1_traffic,
)


# ---------------------------------------------------------------------------
# Fig. 3
# ---------------------------------------------------------------------------
class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_strawman.run()

    def test_headline_ratios(self, result):
        assert result.peak_gain_strawman == pytest.approx(3.4, abs=0.1)
        assert result.max_ask_gain == pytest.approx(155, abs=8)

    def test_spark_is_slowest_everywhere(self, result):
        for cores in result.spark.xs():
            assert result.spark.y_at(cores) < result.strawman.y_at(cores)
            assert result.spark.y_at(cores) < result.ask.y_at(cores)

    def test_report_mentions_paper_anchors(self, result):
        text = fig03_strawman.format_report(result)
        assert "155x" in text and "3.4x" in text


# ---------------------------------------------------------------------------
# Fig. 7
# ---------------------------------------------------------------------------
class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_offload.run()

    def test_preaggr_anchors(self, result):
        assert result.preaggr_point(8).jct_seconds == pytest.approx(111.2, rel=0.01)
        assert result.preaggr_point(32).jct_seconds == pytest.approx(33.22, rel=0.01)

    def test_ask_beats_preaggr_with_a_fraction_of_cpu(self, result):
        ask = result.ask_point(4)
        best_preaggr = min(p.jct_seconds for p in result.preaggr)
        assert ask.jct_seconds < best_preaggr / 3
        assert ask.cpu_percent < 8.0

    def test_ask_jct_scales_with_channels(self, result):
        assert result.ask_point(1).jct_seconds > result.ask_point(2).jct_seconds
        assert result.ask_point(2).jct_seconds > result.ask_point(4).jct_seconds

    def test_report_format(self, result):
        assert "JCT" in fig07_offload.format_report(result)


# ---------------------------------------------------------------------------
# Fig. 8
# ---------------------------------------------------------------------------
class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_multikey.run(tuples_per_dataset=15_000)

    def test_goodput_glitch_positions(self, result):
        fig8a, _ = result
        assert fig8a.glitch_depth(18) > 0
        assert fig8a.glitch_depth(26) > 0

    def test_uniform_packs_nearly_full(self, result):
        _, fig8b = result
        assert fig8b.mean_occupancy("Uniform") > 29

    def test_yelp_is_worst_but_still_multikey(self, result):
        _, fig8b = result
        datasets = [n for n in fig8b.stats if n != "Uniform"]
        worst = min(datasets, key=fig8b.mean_occupancy)
        assert worst == "yelp"
        assert fig8b.mean_occupancy("yelp") > 10  # >> 1 key/packet systems

    def test_report_format(self, result):
        text = fig08_multikey.format_report(result)
        assert "glitch" in text and "yelp" in text


# ---------------------------------------------------------------------------
# Fig. 9
# ---------------------------------------------------------------------------
class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_prioritization.run(
            num_keys=2**10, num_tuples=60_000, ratio_exponents=range(-6, 1)
        )

    def test_prioritization_rescues_cold_first_streams(self, result):
        ratio = 1 / 16
        without = result.ratio_at("Zipf (reverse)", ratio, prioritized=False)
        with_prio = result.ratio_at("Zipf (reverse)", ratio, prioritized=True)
        assert without < 0.1
        assert with_prio > 0.85

    def test_prioritization_is_order_agnostic(self, result):
        # With the shadow copy, hot-first and cold-first converge (§3.4).
        ratio = 1 / 16
        hot = result.ratio_at("Zipf", ratio, prioritized=True)
        cold = result.ratio_at("Zipf (reverse)", ratio, prioritized=True)
        assert abs(hot - cold) < 0.05

    def test_fcfs_depends_heavily_on_order(self, result):
        ratio = 1 / 16
        hot = result.ratio_at("Zipf", ratio, prioritized=False)
        cold = result.ratio_at("Zipf (reverse)", ratio, prioritized=False)
        assert hot - cold > 0.3

    def test_more_aggregators_help_fcfs(self, result):
        series = result.without["Uniform"]
        ys = series.ys()
        assert ys == sorted(ys)

    def test_one_sixteenth_ratio_headline(self, result):
        # Paper: 1/16 ratio achieves ~95.85% with prioritization.
        assert result.ratio_at("Zipf", 1 / 16, prioritized=True) > 0.9

    def test_report_format(self, result):
        assert "1/16" in fig09_prioritization.format_report(result)


# ---------------------------------------------------------------------------
# Figs. 10/11
# ---------------------------------------------------------------------------
class TestFig10And11:
    def test_jct_reduction_band(self):
        result = fig10_jct.run(sizes=(50_000_000, 100_000_000))
        low, high = result.reduction_range()
        assert 0.65 <= low <= high <= 0.78

    def test_functional_cross_check(self):
        reports = fig10_jct.run_functional(tuples_per_mapper=150, distinct_keys=64)
        results = {b: r.result for b, r in reports.items()}
        assert len({frozenset(r.items()) for r in results.values()}) == 1

    def test_fig11_anchors(self):
        result = fig11_tct.run()
        assert result.mapper_tct["ask"] == pytest.approx(1.67, abs=0.15)
        assert result.mapper_saving_vs("spark") > result.reducer_cost_vs("spark")

    def test_fig11_report(self):
        assert "mapper" in fig11_tct.format_report(fig11_tct.run())


# ---------------------------------------------------------------------------
# Fig. 12
# ---------------------------------------------------------------------------
class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_training.run()

    def test_covers_all_models_and_systems(self, result):
        assert set(result.throughput) == {
            "resnet50",
            "resnet101",
            "resnet152",
            "vgg11",
            "vgg16",
            "vgg19",
        }

    def test_shape(self, result):
        for model, per_system in result.throughput.items():
            assert per_system["ask"] > per_system["byteps"]
            assert per_system["switchml"] <= per_system["ask"] * 1.001

    def test_report(self, result):
        assert "images/s" in fig12_training.format_report(result)


# ---------------------------------------------------------------------------
# Fig. 13
# ---------------------------------------------------------------------------
class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_scalability.run()

    def test_peaks(self, result):
        assert max(result.ask_goodput.ys()) == pytest.approx(73.96, abs=0.5)
        assert max(result.noaggr_goodput.ys()) == pytest.approx(91.75, abs=0.5)

    def test_ask_flat_noaggr_decays(self, result):
        assert result.ask_per_sender.y_at(1) == result.ask_per_sender.y_at(8)
        assert result.noaggr_per_sender.y_at(8) == pytest.approx(
            result.noaggr_per_sender.y_at(1) / 8, rel=0.05
        )

    def test_noaggr_at_8_matches_paper(self, result):
        assert result.noaggr_per_sender.y_at(8) == pytest.approx(11.88, abs=0.7)

    def test_report(self, result):
        assert "per-sender" in fig13_scalability.format_report(result)


# ---------------------------------------------------------------------------
# Table 1 (scaled-down smoke; the full run is the benchmark's job)
# ---------------------------------------------------------------------------
class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_traffic.run(num_tuples=8_000)

    def test_all_datasets_present(self, result):
        assert set(result.rows) == {"yelp", "NG", "BAC", "LMDB"}

    def test_ratios_in_plausible_bands(self, result):
        for row in result.rows.values():
            assert 70 <= row.tuple_ratio <= 100
            assert 40 <= row.packet_ratio <= 100

    def test_report(self, result):
        text = table1_traffic.format_report(result)
        assert "yelp" in text and "paper" in text
