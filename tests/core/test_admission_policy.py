"""Unit tests for the admission controller's scheduling policy.

Everything here drives :class:`~repro.core.tenancy.AdmissionController`
directly against a stub clock and closure-based waiters, so each policy
property — weighted deficit-round-robin order, bounded queues, backoff
shape, deadline handling — is observable in isolation from the fabric.
"""

import dataclasses

import pytest

from repro.core.config import AskConfig
from repro.core.results import TaskStats
from repro.core.tenancy import (
    AdmissionController,
    AdmissionWaiter,
    TenantRegistry,
    encode_task_id,
)


class StubClock:
    """Deterministic manual clock: ``fire_next`` pops the earliest timer."""

    def __init__(self):
        self.now = 0
        self.timers = []

    def schedule(self, delay_ns, callback, *args):
        self.timers.append((self.now + delay_ns, callback, args))

    def fire_next(self):
        assert self.timers, "no timer pending"
        self.timers.sort(key=lambda t: t[0])
        at, callback, args = self.timers.pop(0)
        self.now = at
        callback(*args)


class StubTask:
    def __init__(self, tenant, local):
        self.task_id = encode_task_id(tenant, local)
        self.is_settled = False
        self.stats = TaskStats()
        self.failure_reason = None


def make_config(**overrides):
    base = dict(
        admission_control=True,
        admission_queue_limit=4,
        admission_retry_us=100.0,
        admission_backoff=2.0,
        admission_backoff_cap_us=1_600.0,
        admission_deadline_us=5_000.0,
    )
    base.update(overrides)
    return dataclasses.replace(AskConfig(), **base)


class Harness:
    """Controller + shared capacity pool; records grant order by tenant."""

    def __init__(self, config=None, registry=None, capacity=0):
        self.clock = StubClock()
        self.controller = AdmissionController(
            self.clock, config or make_config(), registry=registry
        )
        self.capacity = capacity
        self.order = []
        self.degraded = []
        self.rejections = []
        self._locals = iter(range(1, 10_000))

    def waiter(self, tenant):
        task = StubTask(tenant, next(self._locals))

        def grant():
            if self.capacity < 1:
                return False
            self.capacity -= 1
            self.order.append(tenant)
            return True

        w = AdmissionWaiter(
            task=task,
            grant=grant,
            degrade=lambda: self.degraded.append(tenant),
            reject=lambda reason: self.rejections.append((tenant, reason)),
        )
        return w


# ---------------------------------------------------------------------------
# Weighted deficit round robin
# ---------------------------------------------------------------------------
def test_drr_interleaves_grants_by_weight():
    registry = TenantRegistry()
    registry.register(1, weight=2)
    registry.register(2, weight=1)
    h = Harness(config=make_config(admission_queue_limit=8), registry=registry)
    for _ in range(6):
        h.controller.admit(h.waiter(1))
    for _ in range(3):
        h.controller.admit(h.waiter(2))
    h.capacity = 9
    h.controller.on_release()
    # Each round: two grants for the weight-2 tenant, one for weight-1.
    assert h.order == [1, 1, 2, 1, 1, 2, 1, 1, 2]
    assert h.controller.granted == 9
    assert h.controller.waiting == 0


def test_undeclared_tenants_are_served_with_weight_one():
    h = Harness()
    for tenant in (5, 3):
        h.controller.admit(h.waiter(tenant))
        h.controller.admit(h.waiter(tenant))
    h.capacity = 4
    h.controller.on_release()
    # Sorted-tenant-ID round order, one grant per tenant per round.
    assert h.order == [3, 5, 3, 5]


def test_head_of_line_block_stalls_only_its_own_tenant():
    h = Harness()
    blocked = h.waiter(1)
    blocked.grant = lambda: False  # tenant 1's head can never fit
    h.controller.admit(blocked)
    h.controller.admit(h.waiter(2))
    h.capacity = 2
    h.controller.on_release()
    assert h.order == [2]
    assert h.controller.waiting_of(1) == 1
    assert h.controller.waiting_of(2) == 0


# ---------------------------------------------------------------------------
# Bounded queues
# ---------------------------------------------------------------------------
def test_queue_limit_rejects_loudly_per_tenant():
    h = Harness(config=make_config(admission_queue_limit=2))
    assert h.controller.admit(h.waiter(1))
    assert h.controller.admit(h.waiter(1))
    assert not h.controller.admit(h.waiter(1))
    # Another tenant's queue is unaffected by tenant 1 being full.
    assert h.controller.admit(h.waiter(2))
    assert h.controller.rejected_full == 1
    (tenant, reason), = h.rejections
    assert tenant == 1 and "queue full" in reason


# ---------------------------------------------------------------------------
# Retry timer: deterministic exponential backoff, deadline-clamped
# ---------------------------------------------------------------------------
def test_backoff_doubles_to_the_cap_and_degrades_exactly_at_deadline():
    h = Harness()
    h.controller.admit(h.waiter(1))
    fire_times = []
    while h.clock.timers:
        h.clock.fire_next()
        fire_times.append(h.clock.now)
    # retry 100µs doubling to the 1.6ms cap, final tick clamped so the
    # sweep lands exactly on the 5ms deadline — never past it.
    assert fire_times == [
        100_000, 300_000, 700_000, 1_500_000, 3_100_000, 4_700_000, 5_000_000
    ]
    assert h.degraded == [1]
    assert h.controller.degraded == 1
    assert h.controller.retried == len(fire_times) - 1
    # The sweep stamps the waiter's stats before degrading.
    assert h.controller.waiting == 0


def test_deadline_reject_when_degrade_disabled():
    h = Harness(config=make_config(admission_degrade=False))
    h.controller.admit(h.waiter(7))
    while h.clock.timers:
        h.clock.fire_next()
    assert h.degraded == []
    assert h.controller.rejected_deadline == 1
    (tenant, reason), = h.rejections
    assert tenant == 7 and "deadline" in reason


def test_no_deadline_means_waiters_park_at_the_backoff_cap():
    h = Harness(config=make_config(admission_deadline_us=None))
    h.controller.admit(h.waiter(1))
    for _ in range(8):
        h.clock.fire_next()
    # Timer keeps rescheduling (no deadline to drain it) at the cap.
    spans = [h.clock.timers[0][0] - h.clock.now]
    assert spans == [1_600_000]
    assert h.controller.waiting == 1


def test_successful_grant_resets_the_backoff():
    h = Harness(config=make_config(admission_deadline_us=None))
    h.controller.admit(h.waiter(1))
    h.clock.fire_next()  # 100µs, no memory
    h.clock.fire_next()  # 200µs, no memory
    assert h.controller._backoff_exp == 2
    h.capacity = 1
    h.controller.on_release()
    assert h.order == [1]
    assert h.controller._backoff_exp == 0


def test_timer_self_terminates_when_queues_empty():
    h = Harness()
    h.controller.admit(h.waiter(1))
    h.capacity = 1
    h.controller.on_release()
    # The pending tick fires once more, finds nothing, and does not
    # reschedule — the sim heap drains.
    while h.clock.timers:
        h.clock.fire_next()
    assert h.clock.timers == []
    assert h.controller.waiting == 0


# ---------------------------------------------------------------------------
# Cancelled waiters and stats
# ---------------------------------------------------------------------------
def test_settled_task_is_cancelled_not_granted():
    h = Harness()
    w = h.waiter(1)
    h.controller.admit(w)
    w.task.is_settled = True  # failed elsewhere while queued
    h.capacity = 1
    h.controller.on_release()
    assert h.order == []
    assert h.controller.cancelled == 1
    assert h.controller.waiting == 0


def test_grant_stamps_wait_time_and_retry_count():
    h = Harness(config=make_config(admission_deadline_us=None))
    w = h.waiter(1)
    h.controller.admit(w)
    h.clock.fire_next()  # retry #1 fails
    h.capacity = 1
    h.clock.fire_next()  # retry #2 grants
    assert w.task.stats.admission_wait_ns == h.clock.now
    # "retries" counts the *failed* re-allocations while queued; the
    # attempt that finally succeeds is the grant, not a retry.
    assert w.task.stats.admission_retries == 1
    assert h.controller.retried == 1


# ---------------------------------------------------------------------------
# Snapshot / registry
# ---------------------------------------------------------------------------
def test_snapshot_is_json_ready_and_sorted():
    import json

    registry = TenantRegistry()
    registry.register(2, name="training", weight=2)
    h = Harness(registry=registry)
    h.controller.admit(h.waiter(9))
    h.controller.admit(h.waiter(2))
    h.controller.occupancy_fn = lambda: {9: 24, 2: 0}
    snap = h.controller.snapshot()
    json.dumps(snap)  # no non-string keys anywhere
    assert snap["waiting"] == 2
    assert snap["waiting_per_tenant"] == {"2": 1, "9": 1}
    assert snap["occupancy"] == {"9": 24}  # zero entries elided


def test_registry_validates_weights_and_defaults_unknown_to_one():
    registry = TenantRegistry()
    with pytest.raises(ValueError):
        registry.register(1, weight=0)
    registry.register(1, weight=3)
    assert registry.weight_of(1) == 3
    assert registry.weight_of(42) == 1
    assert registry.known() == (1,)


# ---------------------------------------------------------------------------
# Pump batching: blocked heads are probed once per pump
# ---------------------------------------------------------------------------
def test_pump_attempts_each_blocked_head_once_per_release_edge():
    # Tenant 1 has four grantable waiters; tenants 2 and 3 are wedged
    # behind heads that can never fit.  Draining tenant 1 takes four DRR
    # rounds (weight 1 = one grant per round), and without the blocked-
    # head cache every round would re-attempt both wedged heads.
    h = Harness(config=make_config(admission_queue_limit=8))
    for _ in range(4):
        h.controller.admit(h.waiter(1))
    for tenant in (2, 3):
        wedged = h.waiter(tenant)
        wedged.grant = lambda: False
        h.controller.admit(wedged)
    h.capacity = 4
    h.controller.on_release()
    assert h.order == [1, 1, 1, 1]
    # 4 grants + exactly one probe per wedged tenant — not one per round.
    assert h.controller.grant_attempts == 6


def test_retry_tick_still_reattempts_blocked_heads():
    # The cache must not outlive one pump: a timer tick is a fresh pump,
    # so a head that failed on the release edge is re-attempted (that is
    # the recovery path if a release edge were ever missed), and retry
    # accounting charges it exactly once per tick regardless of rounds.
    h = Harness(config=make_config(admission_deadline_us=None))
    w = h.waiter(1)
    h.controller.admit(w)
    h.controller.on_release()  # probe 1: fails, cached for that pump only
    assert h.controller.grant_attempts == 1
    h.clock.fire_next()  # retry tick: probe 2 fails, retried += 1
    assert h.controller.grant_attempts == 2
    assert h.controller.retried == 1
    h.capacity = 1
    h.clock.fire_next()  # probe 3 grants
    assert h.controller.grant_attempts == 3
    assert h.order == [1]
    # Only the tick-time failure is a retry; release-edge probes and the
    # successful grant are not (same accounting as before batching).
    assert w.task.stats.admission_retries == 1
