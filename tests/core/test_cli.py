"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_names_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_single_experiment(capsys):
    assert main(["run", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "per-sender" in out
    assert "regenerated" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_mixes_known_and_unknown(capsys):
    assert main(["run", "fig13", "nope"]) == 2


def test_demo_is_exact(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "in-network" in out
    assert "exact aggregation" in out


def test_resources_prints_pipeline(capsys):
    assert main(["resources"]) == 0
    out = capsys.readouterr().out
    assert "pipeline" in out and "SRAM" in out


def test_experiment_registry_covers_every_paper_result():
    assert set(EXPERIMENTS) == {
        "fig03",
        "fig07",
        "table1",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig13_tree",
    }


def test_missing_command_is_an_argparse_error():
    with pytest.raises(SystemExit):
        main([])


def test_demo_asyncio_backend_is_exact(capsys):
    assert main(["demo", "--backend", "asyncio"]) == 0
    out = capsys.readouterr().out
    assert "localhost UDP" in out
    assert "exact aggregation" in out


def test_demo_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["demo", "--backend", "dpdk"])


def test_serve_bounded_duration(capsys):
    assert main(["serve", "--duration", "0.5", "--loss", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "serving on 127.0.0.1" in out
    assert "port" in out
    assert "final aggregate" in out
    assert "heartbeat" in out
