"""End-to-end tests for the AskService facade."""

import pytest

from repro.core.config import AskConfig
from repro.core.errors import TaskStateError
from repro.core.service import AskService
from repro.core.task import TaskPhase
from repro.workloads.stream import exact_aggregate


def test_basic_aggregation_matches_reference():
    service = AskService(AskConfig.small(), hosts=3)
    streams = {"h0": [(b"cat", 1), (b"dog", 2)], "h1": [(b"cat", 5)]}
    result = service.aggregate(streams, receiver="h2", check=True)
    assert result.values == {b"cat": 6, b"dog": 2}


def test_receiver_can_also_send():
    service = AskService(AskConfig.small(), hosts=2)
    streams = {"h0": [(b"a", 1)], "h1": [(b"a", 2)]}
    result = service.aggregate(streams, receiver="h1", check=True)
    assert result[b"a"] == 3


def test_mixed_key_classes_end_to_end():
    service = AskService(AskConfig.small(), hosts=2)
    streams = {
        "h0": [
            (b"cat", 1),  # short
            (b"medium", 2),  # medium (coalesced)
            (b"a-much-longer-key", 3),  # long (bypasses the switch)
            (b"cat", 4),
        ]
    }
    result = service.aggregate(streams, receiver="h1", check=True)
    assert result[b"cat"] == 5
    assert result[b"medium"] == 2
    assert result[b"a-much-longer-key"] == 3


def test_value_wraparound_is_consistent():
    cfg = AskConfig.small(value_bits=8)
    service = AskService(cfg, hosts=2)
    streams = {"h0": [(b"k", 200), (b"k", 100)]}
    result = service.aggregate(streams, receiver="h1")
    assert result[b"k"] == (300) & 0xFF


def test_concurrent_tasks_are_isolated():
    service = AskService(AskConfig.small(), hosts=3)
    t1 = service.submit({"h0": [(b"x", 1)] * 50}, receiver="h2", region_size=8)
    t2 = service.submit({"h1": [(b"x", 10)] * 50}, receiver="h2", region_size=8)
    service.run_to_completion()
    assert t1.result[b"x"] == 50
    assert t2.result[b"x"] == 500


def test_sequential_tasks_reuse_persistent_channels():
    service = AskService(AskConfig.small(), hosts=2)
    first = service.aggregate({"h0": [(b"a", 1)] * 30}, receiver="h1")
    second = service.aggregate({"h0": [(b"a", 2)] * 30}, receiver="h1")
    assert first[b"a"] == 30
    assert second[b"a"] == 60
    # The channel kept one continuous sequence space across both tasks.
    channel = service.daemon("h0").channels[0]
    assert channel.window.next_seq >= 60


def test_unknown_hosts_rejected():
    service = AskService(AskConfig.small(), hosts=2)
    with pytest.raises(KeyError):
        service.submit({"h9": [(b"a", 1)]}, receiver="h1")
    with pytest.raises(KeyError):
        service.submit({"h0": [(b"a", 1)]}, receiver="h9")


def test_empty_task_rejected():
    service = AskService(AskConfig.small(), hosts=2)
    with pytest.raises(ValueError):
        service.submit({}, receiver="h1")


def test_duplicate_task_id_rejected():
    service = AskService(AskConfig.small(), hosts=2)
    service.submit({"h0": [(b"a", 1)]}, receiver="h1", task_id=7)
    with pytest.raises(TaskStateError):
        service.submit({"h0": [(b"a", 1)]}, receiver="h1", task_id=7)


def test_task_progresses_through_phases():
    service = AskService(AskConfig.small(), hosts=2)
    task = service.submit({"h0": [(b"a", 1)]}, receiver="h1")
    assert task.phase is TaskPhase.SUBMITTED
    service.run_to_completion()
    assert task.phase is TaskPhase.COMPLETE
    assert task.stats.completed_at_ns is not None
    assert task.stats.started_at_ns is not None


def test_result_published_to_receiver_shared_memory():
    service = AskService(AskConfig.small(), hosts=2)
    task = service.submit({"h0": [(b"a", 2)]}, receiver="h1")
    service.run_to_completion()
    region = service.daemon("h1").shm.get(task.task_id, role="recv")
    assert region.result == {b"a": 2}


def test_switch_region_released_after_completion():
    service = AskService(AskConfig.small(), hosts=2)
    task = service.submit({"h0": [(b"a", 1)]}, receiver="h1")
    service.run_to_completion()
    assert service.switch.controller.lookup_region(task.task_id) is None


def test_region_size_controls_collisions():
    # With a one-aggregator region, distinct keys in one subspace collide
    # and fall through to the receiver — but the result stays exact.
    service = AskService(AskConfig.small(), hosts=2)
    streams = {"h0": [(("k%02d" % i).encode(), 1) for i in range(40)]}
    result = service.aggregate(streams, receiver="h1", region_size=1, check=True)
    assert len(result) == 40
    assert result.stats.tuples_merged_at_receiver > 0


def test_aggregate_check_passes_reference_comparison():
    service = AskService(AskConfig.small(), hosts=2)
    stream = [(("w%02d" % (i % 17)).encode(), i) for i in range(200)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    expected = exact_aggregate(stream, value_bits=32)
    assert result.values == expected


def test_stats_account_for_every_tuple():
    service = AskService(AskConfig.small(), hosts=2)
    stream = [(("w%02d" % (i % 9)).encode(), 1) for i in range(120)]
    result = service.aggregate({"h0": stream}, receiver="h1")
    stats = result.stats
    assert stats.input_tuples == 120
    assert 0 <= stats.tuples_merged_at_receiver <= 120
    assert stats.tuples_aggregated_at_switch + stats.tuples_merged_at_receiver == 120


def test_hosts_accepts_names():
    service = AskService(AskConfig.small(), hosts=["alpha", "beta"])
    result = service.aggregate({"alpha": [(b"a", 1)]}, receiver="beta")
    assert result[b"a"] == 1


def test_failed_allocation_tears_down_and_leaves_service_reusable():
    """A mid-submit allocation failure (tenant quota here) must fail the
    handle loudly, unwind every partial reservation, and leave the rest
    of the service untouched: the concurrent survivor still completes
    exactly and a fresh same-tenant submit fits again afterwards."""
    from repro.core.tenancy import TenantQuotaError

    service = AskService(AskConfig.small(), hosts=2)
    service.switch.controller.tenant_quotas.set(7, 8)
    survivor = service.submit(
        {"h0": [(b"a", 1)] * 300}, receiver="h1", region_size=8, tenant_id=7
    )
    doomed = service.submit(
        {"h0": [(b"a", 1)] * 300}, receiver="h1", region_size=8, tenant_id=7
    )
    with pytest.raises(TenantQuotaError):
        service.run_to_completion()

    assert doomed.phase is TaskPhase.FAILED
    assert "allocation failed" in doomed.failure_reason
    # The doomed task was fully unwound: off the books, no regions held.
    assert doomed.task_id not in service.tasks
    assert not service.control.has_regions(doomed.task_id)

    # The service keeps running: the survivor finishes bit-exact ...
    service.run_to_completion()
    assert survivor.result is not None
    assert survivor.result[b"a"] == 300
    # ... and the freed quota admits a fresh task for the same tenant.
    retry = service.submit(
        {"h0": [(b"b", 2)] * 50}, receiver="h1", region_size=8, tenant_id=7
    )
    service.run_to_completion()
    assert retry.result is not None and retry.result[b"b"] == 100
