"""Tests for the shared-memory task handoff."""

import pytest

from repro.core.shared_memory import SharedMemoryAllocator


def test_allocate_and_write():
    alloc = SharedMemoryAllocator("h0")
    region = alloc.allocate(1)
    region.write([(b"a", 1)])
    region.seal()
    assert region.tuples == [(b"a", 1)]
    assert region.sealed


def test_write_after_seal_rejected():
    alloc = SharedMemoryAllocator("h0")
    region = alloc.allocate(1)
    region.seal()
    with pytest.raises(RuntimeError):
        region.write([(b"a", 1)])


def test_double_allocation_same_role_rejected():
    alloc = SharedMemoryAllocator("h0")
    alloc.allocate(1, role="send")
    with pytest.raises(RuntimeError):
        alloc.allocate(1, role="send")


def test_send_and_recv_roles_coexist():
    # A host can be both a sender and the receiver of one task (§5.5's
    # co-located mappers), each role with its own region.
    alloc = SharedMemoryAllocator("h0")
    send = alloc.allocate(1, role="send")
    recv = alloc.allocate(1, role="recv")
    assert send is not recv
    assert len(alloc) == 2


def test_release_frees_the_slot():
    alloc = SharedMemoryAllocator("h0")
    alloc.allocate(1)
    alloc.release(1)
    alloc.allocate(1)  # no error


def test_publish_result():
    alloc = SharedMemoryAllocator("h0")
    region = alloc.allocate(1, role="recv")
    region.publish_result({b"a": 3})
    assert alloc.get(1, role="recv").result == {b"a": 3}


def test_bytes_used_accounting():
    alloc = SharedMemoryAllocator("h0")
    region = alloc.allocate(1)
    region.write([(b"abc", 1), (b"de", 2)])
    assert region.bytes_used == (3 + 4) + (2 + 4)
