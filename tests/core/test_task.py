"""Tests for the aggregation-task lifecycle."""

import pytest

from repro.core.errors import TaskStateError
from repro.core.task import AggregationTask, TaskPhase


def _task():
    return AggregationTask(task_id=1, receiver="h2", senders=("h0", "h1"))


def test_initial_phase_is_submitted():
    assert _task().phase is TaskPhase.SUBMITTED


def test_normal_lifecycle():
    task = _task()
    for phase in (
        TaskPhase.SETUP,
        TaskPhase.STREAMING,
        TaskPhase.FINALIZING,
        TaskPhase.COMPLETE,
    ):
        task.advance(phase)
    assert task.is_complete


def test_skipping_a_phase_rejected():
    task = _task()
    with pytest.raises(TaskStateError):
        task.advance(TaskPhase.STREAMING)


def test_moving_backwards_rejected():
    task = _task()
    task.advance(TaskPhase.SETUP)
    with pytest.raises(TaskStateError):
        task.advance(TaskPhase.SETUP)


def test_complete_is_terminal():
    task = _task()
    task.advance(TaskPhase.SETUP)
    task.advance(TaskPhase.STREAMING)
    task.advance(TaskPhase.FINALIZING)
    task.advance(TaskPhase.COMPLETE)
    with pytest.raises(TaskStateError):
        task.advance(TaskPhase.FAILED)


def test_failure_allowed_from_any_active_phase():
    for intermediate in range(4):
        task = _task()
        phases = [TaskPhase.SETUP, TaskPhase.STREAMING, TaskPhase.FINALIZING]
        for phase in phases[:intermediate]:
            task.advance(phase)
        task.advance(TaskPhase.FAILED)
        assert task.phase is TaskPhase.FAILED


def test_expected_fins_equals_sender_count():
    assert _task().expected_fins == 2
