"""Tests for AskConfig validation and derived geometry."""

import pytest

from repro.core import constants
from repro.core.config import AskConfig
from repro.core.errors import ConfigError


def test_defaults_match_the_paper():
    cfg = AskConfig()
    assert cfg.num_aas == 32
    assert cfg.aggregators_per_aa == 32768
    assert cfg.window_size == 256
    assert cfg.retransmit_timeout_us == 100.0
    assert cfg.medium_key_groups == 8
    assert cfg.medium_group_width == 2
    assert cfg.data_channels_per_host == 4


def test_derived_geometry():
    cfg = AskConfig()
    assert cfg.key_bytes == 4
    assert cfg.medium_slots == 16
    assert cfg.num_short_slots == 16
    assert cfg.medium_key_bytes == 8
    assert cfg.copy_size == 16384  # shadow copies split the AA
    assert cfg.payload_bytes == 32 * constants.TUPLE_BYTES == 256


def test_copy_size_without_shadow():
    cfg = AskConfig(shadow_copy=False)
    assert cfg.copy_size == cfg.aggregators_per_aa


def test_value_mask():
    assert AskConfig(value_bits=8).value_mask == 0xFF
    assert AskConfig().value_mask == 0xFFFFFFFF


def test_retransmit_timeout_ns():
    assert AskConfig(retransmit_timeout_us=100.0).retransmit_timeout_ns == 100_000


def test_small_config_is_valid_and_small():
    cfg = AskConfig.small()
    assert cfg.num_aas == 8
    assert cfg.num_short_slots == 4
    assert cfg.medium_slots == 4


def test_small_accepts_overrides():
    cfg = AskConfig.small(window_size=4)
    assert cfg.window_size == 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_aas": 0},
        {"aggregators_per_aa": 1},
        {"aggregators_per_aa": 33, "shadow_copy": True},
        {"key_bits": 12},
        {"key_bits": 0},
        {"value_bits": 0},
        {"medium_group_width": 0},
        {"window_size": 0},
        {"retransmit_timeout_us": 0},
        {"data_channels_per_host": 0},
        {"swap_threshold_packets": 0},
        {"admission_queue_limit": 0},
        {"admission_retry_us": 0},
        {"admission_backoff": 0.5},
        {"admission_backoff_cap_us": 50.0},  # below the 100µs retry
        {"admission_deadline_us": 50.0},  # below the 100µs retry
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        AskConfig(**kwargs)


def test_admission_knobs_convert_to_nanoseconds():
    config = AskConfig(
        admission_retry_us=20.0,
        admission_backoff_cap_us=160.0,
        admission_deadline_us=120.0,
    )
    assert config.admission_retry_ns == 20_000
    assert config.admission_backoff_cap_ns == 160_000
    assert config.admission_deadline_ns == 120_000
    assert AskConfig(admission_deadline_us=None).admission_deadline_ns is None


def test_medium_groups_cannot_exceed_aas():
    with pytest.raises(ConfigError):
        AskConfig(num_aas=8, medium_key_groups=5, medium_group_width=2)


def test_at_least_one_short_slot_required_with_medium_groups():
    with pytest.raises(ConfigError):
        AskConfig(num_aas=8, medium_key_groups=4, medium_group_width=2)


def test_no_medium_groups_is_valid():
    cfg = AskConfig(num_aas=8, medium_key_groups=0)
    assert cfg.num_short_slots == 8
    assert cfg.medium_slots == 0


def test_config_is_frozen():
    cfg = AskConfig()
    with pytest.raises(Exception):
        cfg.num_aas = 64  # type: ignore[misc]
