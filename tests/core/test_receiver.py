"""Tests for receiver-side behaviour observed through the service.

The receiver engine is driven by the full service here (building a faithful
stand-alone harness would duplicate the switch); each test pins one
receiver-specific behaviour.
"""

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel


def _run(streams, config=None, fault=None, hosts=2, receiver=None, **agg):
    cfg = config or AskConfig.small()
    service = AskService(cfg, hosts=hosts, fault=fault)
    receiver = receiver or service.hosts[-1]
    result = service.aggregate(streams, receiver=receiver, **agg)
    return service, result


def test_residual_tuples_merged_locally():
    # A one-cell region forces collisions; the loser tuples must be merged
    # by the receiver, not lost.
    streams = {"h0": [(("k%02d" % i).encode(), 1) for i in range(30)] * 2}
    service, result = _run(streams, region_size=1, check=True)
    assert result.stats.tuples_merged_at_receiver > 0


def test_medium_keys_reconstructed_at_receiver():
    # Region of one cell: the second distinct medium key of a group
    # collides and is forwarded; the receiver must reassemble it from its
    # segments.
    streams = {"h0": [(b"medium" + bytes([65 + i]), 1) for i in range(20)]}
    service, result = _run(streams, region_size=1, check=True)
    assert len(result) == 20


def test_duplicate_forwarded_packets_dropped():
    fault = FaultModel(duplicate_rate=0.5, seed=3)
    streams = {"h0": [(("k%02d" % i).encode(), 1) for i in range(40)]}
    service, result = _run(streams, region_size=1, fault=fault, check=True)
    assert result.stats.duplicate_packets_dropped > 0


def test_swap_loop_runs_and_preserves_exactness():
    cfg = AskConfig.small(swap_threshold_packets=2)
    streams = {"h0": [(("k%02d" % (i % 40)).encode(), 1) for i in range(400)]}
    service, result = _run(streams, config=cfg, region_size=2, check=True)
    assert result.stats.swaps >= 1
    assert result.stats.tuples_fetched_from_switch > 0


def test_swap_survives_lossy_network():
    cfg = AskConfig.small(swap_threshold_packets=2)
    fault = FaultModel(loss_rate=0.1, duplicate_rate=0.05, seed=17)
    streams = {"h0": [(("k%02d" % (i % 40)).encode(), 1) for i in range(400)]}
    service, result = _run(streams, config=cfg, region_size=2, fault=fault, check=True)
    assert result.stats.swaps >= 1


def test_no_swaps_when_shadow_disabled():
    cfg = AskConfig.small(shadow_copy=False, swap_threshold_packets=2)
    streams = {"h0": [(("k%02d" % (i % 20)).encode(), 1) for i in range(200)]}
    service, result = _run(streams, config=cfg, check=True)
    assert result.stats.swaps == 0


def test_fin_counted_once_per_sender():
    streams = {"h0": [(b"a", 1)], "h1": [(b"a", 2)]}
    service, result = _run(streams, hosts=3, check=True)
    task = service.tasks[result.task_id]
    assert len(task.fins_received) == 2


def test_stray_packets_for_finished_tasks_ignored():
    # Duplicates arriving after teardown must be ACKed but not processed;
    # exactness of a following task on the same channels shows no state
    # leaked.
    fault = FaultModel(duplicate_rate=0.3, max_extra_delay_ns=200_000, seed=9)
    cfg = AskConfig.small()
    service = AskService(cfg, hosts=2, fault=fault)
    first = service.aggregate({"h0": [(b"a", 1)] * 60}, receiver="h1", check=True)
    second = service.aggregate({"h0": [(b"a", 5)] * 60}, receiver="h1", check=True)
    assert first[b"a"] == 60
    assert second[b"a"] == 300


def test_packets_received_counts_first_arrivals_only():
    streams = {"h0": [(("k%02d" % i).encode(), 1) for i in range(50)]}
    fault = FaultModel(duplicate_rate=0.4, seed=5)
    service, result = _run(streams, region_size=1, fault=fault, check=True)
    stats = result.stats
    assert stats.packets_received <= stats.data_packets_sent + stats.long_packets_sent + 1


def test_malformed_ack_counted_not_crashing():
    from repro.core.packet import AskPacket, PacketFlag

    service = AskService(AskConfig.small(), hosts=2)
    daemon = service.daemon("h0")
    bogus = AskPacket(PacketFlag.ACK, 1, "switch", "h0", channel_index=99, seq=0)
    daemon.receive(bogus)
    assert daemon.malformed_packets == 1
    # The daemon still works afterwards.
    result = service.aggregate({"h0": [(b"a", 1)]}, receiver="h1", check=True)
    assert result[b"a"] == 1
