"""Unit tests for the ingress-hardening primitives.

Counters, the bounded quarantine ring, and the semantic validators are
exercised directly here; their end-to-end behaviour (corrupted frames
become counted drops, poison pills become quarantine entries) is covered
by the chaos/corruption property tests and the ingress fuzzers.
"""

import pytest

from repro.core.packet import (
    FLAG_ACK,
    FLAG_BYPASS,
    FLAG_DATA,
    FLAG_FIN,
    FLAG_LONG,
    FLAG_SWAP,
    SWAP_CHANNEL_INDEX,
    AskPacket,
    Slot,
)
from repro.core.robustness import (
    DEFINED_FLAG_MASK,
    Quarantine,
    QuarantineEntry,
    RobustnessCounters,
    quarantine_packet,
    validate_host_ingress,
    validate_switch_ingress,
)

NUM_AAS = 4
CHANNELS = 2


def data_packet(**overrides):
    fields = dict(
        flags=FLAG_DATA,
        task_id=1,
        src="h0",
        dst="switch",
        channel_index=0,
        seq=0,
        bitmap=0b0011,
        slots=(Slot(b"a" * 10, 1), Slot(b"b" * 10, 2), None, None),
    )
    fields.update(overrides)
    return AskPacket(**fields)


# ----------------------------------------------------------------------
# RobustnessCounters
# ----------------------------------------------------------------------
def test_counters_accumulate_per_reason():
    counters = RobustnessCounters()
    assert not counters
    assert counters.total == 0
    counters.bump("checksum")
    counters.bump("checksum")
    counters.bump("bad-flag-combination")
    assert counters
    assert counters.get("checksum") == 2
    assert counters.get("missing") == 0
    assert counters.total == 3
    assert counters.as_dict() == {"checksum": 2, "bad-flag-combination": 1}
    # as_dict is a snapshot, not a live view.
    counters.as_dict()["checksum"] = 99
    assert counters.get("checksum") == 2


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
def _entry(i: int) -> QuarantineEntry:
    return QuarantineEntry(
        t_ns=i,
        reason="protocol-invariant",
        src="h0",
        dst="switch",
        task_id=1,
        channel_index=0,
        seq=i,
        flags=FLAG_DATA,
    )


def test_quarantine_is_bounded_and_counts_evictions():
    quarantine = Quarantine(limit=3)
    for i in range(5):
        quarantine.admit(_entry(i))
    assert quarantine.admitted == 5
    assert quarantine.evicted == 2
    assert quarantine.held() == 3
    assert len(quarantine) == 3
    # Oldest entries were evicted; the newest survive in order.
    assert [e.seq for e in quarantine.entries] == [2, 3, 4]
    assert quarantine.summary() == {"admitted": 5, "evicted": 2, "held": 3}


def test_quarantine_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        Quarantine(limit=0)


def test_quarantine_packet_counts_and_records_header():
    counters = RobustnessCounters()
    quarantine = Quarantine()
    pkt = data_packet(seq=7)
    quarantine_packet(counters, quarantine, 123, "protocol-invariant", pkt)
    assert counters.get("protocol-invariant") == 1
    (entry,) = quarantine.entries
    assert entry.t_ns == 123
    assert entry.reason == "protocol-invariant"
    assert (entry.src, entry.dst) == ("h0", "switch")
    assert entry.seq == 7
    assert entry.as_dict()["flags"] == FLAG_DATA


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------
def test_clean_data_packet_passes_both_ingresses():
    pkt = data_packet()
    assert validate_switch_ingress(pkt, NUM_AAS, CHANNELS) is None
    assert validate_host_ingress(pkt, NUM_AAS, CHANNELS) is None


def test_undefined_flag_bits_rejected():
    pkt = data_packet(flags=FLAG_DATA | 0x40)
    assert 0x40 & ~DEFINED_FLAG_MASK
    assert validate_switch_ingress(pkt, NUM_AAS, CHANNELS) == "undefined-flags"
    assert validate_host_ingress(pkt, NUM_AAS, CHANNELS) == "undefined-flags"


@pytest.mark.parametrize(
    "flags",
    [
        FLAG_DATA | FLAG_ACK,
        FLAG_ACK | FLAG_FIN,
        FLAG_SWAP | FLAG_DATA,
        FLAG_ACK | FLAG_BYPASS,
        FLAG_LONG,  # LONG without DATA
        0,  # no flags at all
    ],
)
def test_impossible_flag_combinations_rejected(flags):
    pkt = data_packet(flags=flags)
    assert validate_switch_ingress(pkt, NUM_AAS, CHANNELS) == "bad-flag-combination"


@pytest.mark.parametrize(
    "overrides,reason",
    [
        (dict(task_id=-1), "task-id-range"),
        (dict(seq=-5), "seq-range"),
        (dict(bitmap=-1), "bitmap-range"),
        (dict(bitmap=0b10000), "bitmap-range"),  # bit 4 with 4 slots
        (dict(channel_index=CHANNELS), "channel-index"),
        (dict(channel_index=-1), "channel-index"),
    ],
)
def test_range_violations_rejected(overrides, reason):
    pkt = data_packet(**overrides)
    assert validate_switch_ingress(pkt, NUM_AAS, CHANNELS) == reason
    assert validate_host_ingress(pkt, NUM_AAS, CHANNELS) == reason


def test_slot_count_bounded_by_channel_width_for_short_frames():
    too_wide = tuple(Slot(b"k" * 10, 1) for _ in range(NUM_AAS + 1))
    pkt = data_packet(slots=too_wide, bitmap=0b1)
    assert validate_switch_ingress(pkt, NUM_AAS, CHANNELS) == "slot-count"


def test_long_frames_may_exceed_channel_width():
    # LONG payloads bypass switch aggregation, so slot position is not an
    # AA index and the width bound does not apply.
    wide = tuple(Slot(b"k" * 30, 1) for _ in range(NUM_AAS + 2))
    pkt = data_packet(
        flags=FLAG_DATA | FLAG_LONG, slots=wide, bitmap=(1 << len(wide)) - 1
    )
    assert validate_switch_ingress(pkt, NUM_AAS, CHANNELS) is None


def test_swap_must_use_swap_channel():
    good = data_packet(
        flags=FLAG_SWAP, channel_index=SWAP_CHANNEL_INDEX, bitmap=0, slots=()
    )
    bad = data_packet(flags=FLAG_SWAP, channel_index=0, bitmap=0, slots=())
    assert validate_switch_ingress(good, NUM_AAS, CHANNELS) is None
    assert validate_switch_ingress(bad, NUM_AAS, CHANNELS) == "channel-index"
    # A SWAP delivered to a *host* is misrouted no matter the channel.
    assert validate_host_ingress(good, NUM_AAS, CHANNELS) == "misrouted-swap"
