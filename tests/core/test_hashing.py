"""Tests for the stable hash functions."""

from repro.core.hashing import address_hash, channel_hash, fnv1a32, partition_hash


def test_fnv1a32_known_vectors():
    # Standard FNV-1a test vectors.
    assert fnv1a32(b"") == 0x811C9DC5
    assert fnv1a32(b"a") == 0xE40C292C
    assert fnv1a32(b"foobar") == 0xBF9CF968


def test_hashes_are_deterministic_across_calls():
    assert partition_hash(b"hello") == partition_hash(b"hello")
    assert address_hash(b"hello") == address_hash(b"hello")


def test_partition_and_address_hashes_are_decorrelated():
    # Same key, different offsets -> different hash streams; keys of one
    # subspace must still spread over the whole AA.
    keys = [("k%d" % i).encode() for i in range(2048)]
    same_subspace = [k for k in keys if partition_hash(k) % 16 == 3]
    assert len(same_subspace) > 60
    addresses = {address_hash(k) % 64 for k in same_subspace}
    # If the two hashes were correlated, keys of one subspace would land on
    # 1/16th of the AA; decorrelated they cover most of its 64 cells.
    assert len(addresses) > 40


def test_partition_hash_is_roughly_uniform():
    counts = [0] * 16
    for i in range(16_000):
        counts[partition_hash(str(i).encode()) % 16] += 1
    assert min(counts) > 700 and max(counts) < 1300


def test_channel_hash_spreads_task_ids():
    slots = {channel_hash(task) % 4 for task in range(1, 32)}
    assert slots == {0, 1, 2, 3}


def test_hash_output_is_32_bit():
    for data in (b"", b"x", b"a-long-key" * 10):
        assert 0 <= fnv1a32(data) <= 0xFFFFFFFF
