"""API-stability tests: everything the README/docs promise is importable."""

import importlib

import pytest

import repro


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version_is_set():
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.core.service",
        "repro.core.multirack_service",
        "repro.core.controlplane",
        "repro.core.tenancy",
        "repro.switch.trio",
        "repro.switch.program",
        "repro.net.multirack",
        "repro.transport.congestion",
        "repro.apps.mapreduce.rdd",
        "repro.apps.training.allreduce",
        "repro.baselines.sync_ina",
        "repro.workloads.io",
        "repro.perf.report",
        "repro.experiments.fastsim",
        "repro.experiments.ablations",
        "repro.cli",
    ],
)
def test_documented_modules_import(module):
    importlib.import_module(module)


def test_readme_quickstart_verbatim():
    from repro import AskConfig, AskService

    service = AskService(AskConfig.small(), hosts=3)
    result = service.aggregate(
        {"h0": [(b"cat", 1), (b"dog", 2)], "h1": [(b"cat", 5)]},
        receiver="h2",
    )
    assert result[b"cat"] == 6


def test_subpackage_all_lists_are_accurate():
    for package_name in (
        "repro.core",
        "repro.net",
        "repro.switch",
        "repro.transport",
        "repro.workloads",
        "repro.baselines",
        "repro.perf",
    ):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"


def test_runtime_public_surface_is_locked():
    """The runtime layer's public names are a compatibility contract:
    backends and harnesses type against them, so additions are deliberate
    (update this list) and removals are breaking."""
    import repro.runtime

    assert set(repro.runtime.__all__) == {
        "AsyncioClock",
        "AsyncioFabric",
        "AsyncioRunner",
        "Clock",
        "CodecError",
        "Deployment",
        "DeploymentBuilder",
        "Fabric",
        "FabricTimeoutError",
        "Node",
        "SimFabric",
        "SimMultiRackFabric",
        "SimRunner",
        "SwitchFabricView",
        "TaskRunner",
        "TimerHandle",
        "decode_packet",
        "encode_packet",
    }


def test_runtime_exports_resolve_lazily():
    import repro.runtime

    for name in repro.runtime.__all__:
        assert getattr(repro.runtime, name) is not None
    assert set(repro.runtime.__all__) <= set(dir(repro.runtime))


def test_runtime_unknown_attribute_raises():
    import repro.runtime

    with pytest.raises(AttributeError):
        repro.runtime.NoSuchThing
