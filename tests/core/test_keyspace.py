"""Tests for key classification, padding and the ordered key-space partition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.errors import KeyTooLongError
from repro.core.keyspace import (
    AmbiguousKeyError,
    KeyClass,
    KeySpaceLayout,
    classify_key,
    pad_key,
    unpad_key,
)


@pytest.fixture
def cfg():
    return AskConfig(
        num_aas=8,
        aggregators_per_aa=16,
        medium_key_groups=2,
        medium_group_width=2,
    )


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------
def test_classify_by_length(cfg):
    assert classify_key(b"abc", cfg) is KeyClass.SHORT
    assert classify_key(b"abcd", cfg) is KeyClass.SHORT
    assert classify_key(b"abcde", cfg) is KeyClass.MEDIUM
    assert classify_key(b"abcdefgh", cfg) is KeyClass.MEDIUM
    assert classify_key(b"abcdefghi", cfg) is KeyClass.LONG


def test_classify_without_medium_groups():
    cfg = AskConfig(num_aas=8, medium_key_groups=0, aggregators_per_aa=16)
    assert classify_key(b"abcde", cfg) is KeyClass.LONG


# ---------------------------------------------------------------------------
# Padding
# ---------------------------------------------------------------------------
def test_pad_appends_terminator_and_zeros():
    assert pad_key(b"ab", 4) == b"ab\x80\x00"
    assert pad_key(b"", 4) == b"\x80\x00\x00\x00"


def test_full_width_key_stored_verbatim():
    assert pad_key(b"abcd", 4) == b"abcd"


def test_pad_rejects_too_long():
    with pytest.raises(KeyTooLongError):
        pad_key(b"abcde", 4)


def test_ambiguous_full_width_key_rejected():
    # b"ab\x80\x00" is the padded form of b"ab"; as a verbatim 4-byte key it
    # would alias it, so it is rejected.
    with pytest.raises(AmbiguousKeyError):
        pad_key(b"ab\x80\x00", 4)
    with pytest.raises(AmbiguousKeyError):
        pad_key(b"abc\x80", 4)


def test_unpad_inverts_pad():
    for key in (b"", b"a", b"ab", b"abc", b"abcd", b"a\x00", b"a\x80"):
        try:
            padded = pad_key(key, 4)
        except AmbiguousKeyError:
            continue
        assert unpad_key(padded) == key


@given(st.binary(min_size=0, max_size=4))
def test_pad_unpad_roundtrip_property(key):
    try:
        padded = pad_key(key, 4)
    except AmbiguousKeyError:
        return
    assert len(padded) == 4 or len(key) == 4
    assert unpad_key(padded) == key


@given(st.binary(min_size=0, max_size=3), st.binary(min_size=0, max_size=3))
def test_distinct_keys_never_share_padded_form(a, b):
    if a == b:
        return
    assert pad_key(a, 4) != pad_key(b, 4)


# ---------------------------------------------------------------------------
# Layout / assignment
# ---------------------------------------------------------------------------
def test_assignment_is_stable(cfg):
    layout = KeySpaceLayout(cfg)
    a1 = layout.assign(b"word")
    a2 = layout.assign(b"word")
    assert a1 == a2


def test_short_key_gets_one_slot_in_short_range(cfg):
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"cat")
    assert assignment.key_class is KeyClass.SHORT
    assert len(assignment.slots) == 1
    assert 0 <= assignment.primary_slot < cfg.num_short_slots


def test_medium_key_gets_a_whole_group(cfg):
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"medium")
    assert assignment.key_class is KeyClass.MEDIUM
    assert len(assignment.slots) == cfg.medium_group_width
    assert assignment.slots[0] >= cfg.num_short_slots
    assert assignment.slots == tuple(
        range(assignment.slots[0], assignment.slots[0] + cfg.medium_group_width)
    )


def test_long_key_raises(cfg):
    layout = KeySpaceLayout(cfg)
    with pytest.raises(KeyTooLongError):
        layout.assign(b"averylongkey")


def test_ambiguous_short_key_promoted_to_medium(cfg):
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"ab\x80\x00")
    assert assignment.key_class is KeyClass.MEDIUM


def test_ambiguous_medium_key_raises_key_too_long(cfg):
    layout = KeySpaceLayout(cfg)
    with pytest.raises(KeyTooLongError):
        layout.assign(b"abcdef\x80\x00")


def test_segments_split_padded_medium_key(cfg):
    layout = KeySpaceLayout(cfg)
    assignment = layout.assign(b"yours")
    segments = layout.segments(assignment.padded)
    assert len(segments) == 2
    assert b"".join(segments) == assignment.padded
    assert all(len(s) == cfg.key_bytes for s in segments)


def test_segments_validates_length(cfg):
    layout = KeySpaceLayout(cfg)
    with pytest.raises(ValueError):
        layout.segments(b"short")


def test_group_slots_and_group_of_slot(cfg):
    layout = KeySpaceLayout(cfg)
    assert layout.group_slots(0) == (4, 5)
    assert layout.group_slots(1) == (6, 7)
    assert layout.group_of_slot(5) == 0
    assert layout.group_of_slot(6) == 1
    with pytest.raises(IndexError):
        layout.group_slots(2)
    with pytest.raises(ValueError):
        layout.group_of_slot(0)


def test_slot_kind(cfg):
    layout = KeySpaceLayout(cfg)
    assert layout.slot_kind(0) is KeyClass.SHORT
    assert layout.slot_kind(4) is KeyClass.MEDIUM
    with pytest.raises(IndexError):
        layout.slot_kind(8)


def test_short_keys_spread_over_all_short_slots(cfg):
    layout = KeySpaceLayout(cfg)
    slots = {layout.assign(("k%03d" % i).encode()).primary_slot for i in range(200)}
    assert slots == set(range(cfg.num_short_slots))


def test_medium_keys_spread_over_all_groups(cfg):
    layout = KeySpaceLayout(cfg)
    firsts = {
        layout.assign(("medky%03d" % i).encode()[:6]).slots[0] for i in range(200)
    }
    assert firsts == {4, 6}
