"""Tests for the sender data channel: window, retransmission, FIN, FIFO."""

import pytest

from repro.core.config import AskConfig
from repro.core.packer import pack_stream
from repro.core.packet import ack_for
from repro.core.sender import SenderChannel, SendingJob
from repro.core.task import AggregationTask
from repro.net.simulator import Simulator


def _harness(window=4, rto_us=100.0):
    cfg = AskConfig.small(window_size=window, retransmit_timeout_us=rto_us)
    sim = Simulator()
    sent = []
    channel = SenderChannel("h0", 0, sim, cfg, sent.append, switch_names=frozenset({"switch"}))
    return cfg, sim, sent, channel


def _job(cfg, tuples, completions=None):
    task = AggregationTask(task_id=1, receiver="h1", senders=("h0",))
    payloads, _ = pack_stream(tuples, cfg)
    done = (completions.append if completions is not None else None)
    return SendingJob(task=task, dst="h1", payloads=payloads, on_complete=done)


def _ack(channel, pkt, replier="switch"):
    channel.on_ack(ack_for(pkt, replier))


def test_sends_up_to_window_then_stalls():
    cfg, sim, sent, channel = _harness(window=4)
    job = _job(cfg, [(b"cat", 1)] * 10)  # 10 single-tuple payloads
    channel.enqueue(job)
    assert len(sent) == 4
    assert [p.seq for p in sent] == [0, 1, 2, 3]


def test_ack_advances_window_and_releases_more():
    cfg, sim, sent, channel = _harness(window=4)
    channel.enqueue(_job(cfg, [(b"cat", 1)] * 10))
    _ack(channel, sent[0])
    assert [p.seq for p in sent] == [0, 1, 2, 3, 4]


def test_window_blocks_on_missing_base_ack():
    cfg, sim, sent, channel = _harness(window=4)
    channel.enqueue(_job(cfg, [(b"cat", 1)] * 10))
    # ACK 1..3 but not 0: base stays at 0, nothing new may be sent.
    for pkt in list(sent[1:4]):
        _ack(channel, pkt)
    assert len(sent) == 4


def test_duplicate_acks_are_harmless():
    cfg, sim, sent, channel = _harness(window=4)
    channel.enqueue(_job(cfg, [(b"cat", 1)] * 6))
    _ack(channel, sent[0])
    _ack(channel, sent[0])
    assert [p.seq for p in sent] == [0, 1, 2, 3, 4]


def test_timeout_retransmits_same_seq():
    cfg, sim, sent, channel = _harness(window=2, rto_us=10.0)
    channel.enqueue(_job(cfg, [(b"cat", 1)]))
    sim.run(until=9_999)
    assert len(sent) == 1
    sim.run(until=10_050)
    assert len(sent) >= 2
    assert sent[1].seq == sent[0].seq
    assert channel.active_job.task.stats.retransmissions >= 1


def test_ack_cancels_retransmission():
    cfg, sim, sent, channel = _harness(window=2, rto_us=10.0)
    channel.enqueue(_job(cfg, [(b"cat", 1)]))
    _ack(channel, sent[0])
    sim.run(until=100_000)
    data = [p for p in sent if p.is_data]
    assert len(data) == 1


def test_fin_sent_after_all_data_acked():
    cfg, sim, sent, channel = _harness(window=4)
    channel.enqueue(_job(cfg, [(b"cat", 1)] * 2))
    assert not any(p.is_fin for p in sent)
    _ack(channel, sent[0])
    assert not any(p.is_fin for p in sent)
    _ack(channel, sent[1])
    fins = [p for p in sent if p.is_fin]
    assert len(fins) == 1
    assert fins[0].seq == 2  # FIN occupies the next sequence number


def test_job_completes_when_fin_acked():
    cfg, sim, sent, channel = _harness(window=4)
    completions = []
    channel.enqueue(_job(cfg, [(b"cat", 1)], completions=completions))
    _ack(channel, sent[0])
    assert completions == []
    fin = next(p for p in sent if p.is_fin)
    _ack(channel, fin, replier="h1")
    assert len(completions) == 1
    assert channel.idle


def test_jobs_served_fifo():
    cfg, sim, sent, channel = _harness(window=4)
    first_done = []
    channel.enqueue(_job(cfg, [(b"cat", 1)], completions=first_done))
    second = _job(cfg, [(b"dog", 1)])
    channel.enqueue(second)
    # Nothing of the second job is sent while the first is in flight.
    assert all(p.task_id == 1 or p.is_fin for p in sent)
    assert len([p for p in sent if p.is_data]) == 1
    _ack(channel, sent[0])
    fin = next(p for p in sent if p.is_fin)
    _ack(channel, fin, replier="h1")
    # Now the second job's data flows, continuing the channel's seq space.
    assert sent[-1].is_data
    assert sent[-1].seq == 2


def test_ack_replier_attribution():
    cfg, sim, sent, channel = _harness(window=4)
    job = _job(cfg, [(b"cat", 1), (b"cat", 2)])
    channel.enqueue(job)
    _ack(channel, sent[0], replier="switch")
    _ack(channel, sent[1], replier="h1")
    assert job.task.stats.acks_from_switch == 1
    assert job.task.stats.acks_from_receiver == 1


def test_fin_retries_when_congestion_window_shut_at_drain():
    # Seed regression: if the last data ACK arrives while the congestion
    # window is shut, _pump() finds the job drained but _admits() False and
    # simply returns.  No outstanding packet remains to generate another
    # ACK, so nothing ever re-pumps the channel: the FIN is never sent and
    # the job stalls forever.  The fix self-schedules a zero-delay retry.
    cfg = AskConfig.small(
        window_size=4,
        retransmit_timeout_us=100.0,
        congestion_control=True,
        cwnd_initial=2.0,
    )
    sim = Simulator()
    sent = []
    channel = SenderChannel(
        "h0", 0, sim, cfg, sent.append, switch_names=frozenset({"switch"})
    )
    completions = []
    channel.enqueue(_job(cfg, [(b"cat", 1)], completions=completions))
    assert len(sent) == 1

    # Shut the window via the ECN halving path: with the floor lowered,
    # the final (congestion-echo) ACK halves cwnd below one packet, so the
    # post-ACK pump refuses the FIN.  (The invariant minimum >= 1 normally
    # prevents this; tampering stands in for an adversarial ECN storm.)
    channel.congestion.minimum = 0.0
    channel.congestion.cwnd = 0.5
    channel.on_ack(ack_for(sent[0].with_ecn(), "switch"))
    assert not any(p.is_fin for p in sent)  # FIN admission was refused

    # Reopen the window; the self-scheduled retry must send the FIN
    # without any further external stimulus.  (run bounded below the RTO so
    # the FIN's own retransmit timer does not fire.)
    channel.congestion.cwnd = 1.0
    sim.run(until=50_000)
    fins = [p for p in sent if p.is_fin]
    assert len(fins) == 1

    _ack(channel, fins[0], replier="h1")
    assert len(completions) == 1
    assert channel.idle


def test_fin_retry_not_scheduled_twice():
    cfg = AskConfig.small(
        window_size=4,
        retransmit_timeout_us=100.0,
        congestion_control=True,
        cwnd_initial=2.0,
    )
    sim = Simulator()
    sent = []
    channel = SenderChannel(
        "h0", 0, sim, cfg, sent.append, switch_names=frozenset({"switch"})
    )
    channel.enqueue(_job(cfg, [(b"cat", 1)]))
    channel.congestion.minimum = 0.0
    channel.congestion.cwnd = 0.5
    channel.on_ack(ack_for(sent[0].with_ecn(), "switch"))
    pending_after_ack = sim.pending
    # Repeated pumps while the retry is pending must not pile up events.
    channel._pump()
    channel._pump()
    assert sim.pending == pending_after_ack


def test_stats_count_first_transmissions_only():
    cfg, sim, sent, channel = _harness(window=2, rto_us=5.0)
    job = _job(cfg, [(b"cat", 1)])
    channel.enqueue(job)
    sim.run(until=26_000)  # several retransmissions
    assert job.task.stats.data_packets_sent == 1
    assert job.task.stats.retransmissions >= 3
