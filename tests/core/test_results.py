"""Tests for task statistics and the reference aggregator."""

from repro.core.results import AggregationResult, TaskStats, reference_aggregate


def test_reference_aggregate_sums_by_key():
    streams = {
        "h0": [(b"a", 1), (b"b", 2)],
        "h1": [(b"a", 3)],
    }
    assert reference_aggregate(streams, (1 << 32) - 1) == {b"a": 4, b"b": 2}


def test_reference_aggregate_modular_arithmetic():
    streams = {"h0": [(b"a", 0xFF), (b"a", 0x02)]}
    assert reference_aggregate(streams, 0xFF) == {b"a": 1}


def test_switch_aggregation_ratio():
    stats = TaskStats(input_tuples=100, tuples_merged_at_receiver=15)
    assert stats.tuples_aggregated_at_switch == 85
    assert stats.switch_aggregation_ratio == 0.85


def test_switch_ack_ratio():
    stats = TaskStats(data_packets_sent=8, long_packets_sent=2, acks_from_switch=6)
    assert stats.switch_ack_ratio == 0.6


def test_ratios_are_zero_without_traffic():
    stats = TaskStats()
    assert stats.switch_aggregation_ratio == 0.0
    assert stats.switch_ack_ratio == 0.0


def test_completion_time():
    stats = TaskStats(submitted_at_ns=100)
    assert stats.completion_time_ns is None
    stats.completed_at_ns = 350
    assert stats.completion_time_ns == 250


def test_aggregation_result_mapping_interface():
    result = AggregationResult(1, {b"a": 4, b"b": 2}, TaskStats())
    assert result[b"a"] == 4
    assert result.get(b"missing") == 0
    assert len(result) == 2
    assert dict(result.items()) == {b"a": 4, b"b": 2}
