"""Tests for ECN mark propagation through the packet layer and the switch."""

from repro.core.config import AskConfig
from repro.core.packet import AskPacket, PacketFlag, Slot, ack_for
from repro.net.simulator import Simulator
from repro.switch.switch import AskSwitch


def _data(ecn=False):
    return AskPacket(
        PacketFlag.DATA, 1, "h0", "h1", 0, 0,
        bitmap=0b1, slots=(Slot(b"cat\x80", 1),), ecn=ecn,
    )


def test_with_ecn_marks_a_copy():
    pkt = _data()
    marked = pkt.with_ecn()
    assert marked.ecn and not pkt.ecn
    assert marked.slots == pkt.slots and marked.seq == pkt.seq


def test_with_ecn_is_idempotent():
    marked = _data(ecn=True)
    assert marked.with_ecn() is marked


def test_ack_echoes_the_mark():
    assert ack_for(_data(ecn=True), "switch").ecn
    assert not ack_for(_data(ecn=False), "switch").ecn


def test_with_bitmap_preserves_the_mark():
    assert _data(ecn=True).with_bitmap(0).ecn


def test_switch_ack_echoes_ingress_mark():
    cfg = AskConfig.small()
    switch = AskSwitch(cfg, Simulator(), max_tasks=2, max_channels=4)
    switch.controller.allocate_region(1)
    decision = switch.program.process(switch.pipeline.begin_pass(), _data(ecn=True))
    (ack,) = decision.emit
    assert ack.is_ack and ack.ecn


def test_switch_forward_carries_mark_onward():
    cfg = AskConfig.small()
    switch = AskSwitch(cfg, Simulator(), max_tasks=2, max_channels=4)
    # No region: the packet is forwarded unaggregated, mark intact.
    decision = switch.program.process(switch.pipeline.begin_pass(), _data(ecn=True))
    (fwd,) = decision.emit
    assert fwd.ecn
