"""Tests for the ASK packet format and wire accounting."""

import pytest

from repro.core import constants
from repro.core.errors import ProtocolError
from repro.core.packet import (
    SWAP_CHANNEL_INDEX,
    AskPacket,
    PacketFlag,
    Slot,
    ack_for,
    fin_packet,
    swap_packet,
)


def _data(slots, bitmap, flags=PacketFlag.DATA):
    return AskPacket(
        flags=flags,
        task_id=1,
        src="h0",
        dst="h1",
        channel_index=2,
        seq=5,
        bitmap=bitmap,
        slots=tuple(slots),
    )


def test_flag_properties():
    pkt = _data([Slot(b"abcd", 1)], 0b1)
    assert pkt.is_data and not pkt.is_ack and not pkt.is_fin and not pkt.is_swap


def test_channel_key_identifies_sequence_space():
    pkt = _data([], 0)
    assert pkt.channel_key == ("h0", 2)


def test_live_slots_follow_bitmap():
    slots = [Slot(b"aaaa", 1), None, Slot(b"cccc", 3)]
    pkt = _data(slots, 0b101)
    assert pkt.live_slots() == [(0, slots[0]), (2, slots[2])]


def test_live_slots_rejects_bit_on_blank():
    pkt = _data([None, Slot(b"bbbb", 2)], 0b01)
    with pytest.raises(ProtocolError):
        pkt.live_slots()


def test_with_bitmap_preserves_everything_else():
    pkt = _data([Slot(b"aaaa", 1)], 0b1)
    rewritten = pkt.with_bitmap(0)
    assert rewritten.bitmap == 0
    assert rewritten.slots == pkt.slots
    assert rewritten.seq == pkt.seq
    assert pkt.bitmap == 0b1  # original untouched (immutability)


def test_tuple_count_is_popcount():
    pkt = _data([Slot(b"a" * 4, 1)] * 4, 0b1011)
    assert pkt.tuple_count == 3


def test_data_frame_bytes_carries_all_slots_blank_or_not():
    pkt = _data([Slot(b"aaaa", 1), None, None], 0b001)
    assert pkt.frame_bytes() == constants.HEADER_BYTES + 3 * constants.TUPLE_BYTES


def test_wire_overhead_is_78_bytes():
    pkt = _data([Slot(b"aaaa", 1)], 0b1)
    assert pkt.wire_bytes() - pkt.num_slots * constants.TUPLE_BYTES == 78


def test_ack_frame_is_headers_only():
    ack = ack_for(_data([Slot(b"aaaa", 1)], 0b1), replier="switch")
    assert ack.frame_bytes() == constants.HEADER_BYTES


def test_goodput_counts_only_live_slots():
    pkt = _data([Slot(b"aaaa", 1), None, Slot(b"cccc", 1)], 0b101)
    assert pkt.goodput_bytes() == 2 * constants.TUPLE_BYTES


def test_long_packet_variable_length_encoding():
    pkt = _data([Slot(b"a-very-long-key", 1)], 0b1, flags=PacketFlag.DATA | PacketFlag.LONG)
    assert pkt.is_long
    assert pkt.frame_bytes() == constants.HEADER_BYTES + 1 + 15 + 4


def test_ack_for_reverses_direction_and_echoes_seq():
    pkt = _data([Slot(b"aaaa", 1)], 0b1)
    ack = ack_for(pkt, replier="switch")
    assert ack.is_ack
    assert ack.dst == "h0" and ack.src == "switch"
    assert ack.seq == pkt.seq
    assert ack.channel_index == pkt.channel_index


def test_fin_packet_shape():
    fin = fin_packet(9, "h0", "h1", 3, seq=77)
    assert fin.is_fin and not fin.is_data
    assert fin.seq == 77 and fin.channel_key == ("h0", 3)


def test_swap_packet_uses_sentinel_channel_and_epoch():
    swap = swap_packet(9, "h1", "switch", epoch=5)
    assert swap.is_swap
    assert swap.channel_index == SWAP_CHANNEL_INDEX
    assert swap.seq == 5


def test_slot_requires_bytes_key():
    with pytest.raises(TypeError):
        Slot("not-bytes", 1)  # type: ignore[arg-type]
