"""ControlPlane error paths: registration, allocation, post-release use."""

import pytest

from repro.core.config import AskConfig
from repro.core.controlplane import ControlPlane
from repro.core.errors import RegionExhaustedError, TaskStateError
from repro.net.simulator import Simulator
from repro.switch.switch import AskSwitch


def make_switch(name="switch", max_tasks=4):
    return AskSwitch(
        AskConfig.small(), Simulator(), name=name, max_tasks=max_tasks, max_channels=8
    )


def make_control(names=("switch",)):
    control = ControlPlane()
    for name in names:
        control.register(name, make_switch(name).controller)
    return control


def test_double_register_rejected():
    control = make_control()
    with pytest.raises(ValueError, match="already registered"):
        control.register("switch", make_switch().controller)


def test_allocate_on_unknown_switch():
    control = make_control()
    with pytest.raises(KeyError):
        control.allocate(1, ("no-such-tor",))


def test_allocate_needs_at_least_one_switch():
    control = make_control()
    with pytest.raises(ValueError, match="at least one switch"):
        control.allocate(1, ())


def test_double_allocate_rejected():
    control = make_control()
    control.allocate(1, ("switch",))
    with pytest.raises(TaskStateError, match="already allocated"):
        control.allocate(1, ("switch",))


def test_partial_allocation_rolls_back():
    """All-or-nothing: if the second TOR cannot allocate, the first TOR's
    reservation is released before the error propagates."""
    control = ControlPlane()
    big = make_switch("tor-a", max_tasks=4)
    full = make_switch("tor-b", max_tasks=1)
    control.register("tor-a", big.controller)
    control.register("tor-b", full.controller)
    full.controller.allocate_region(99)  # exhaust tor-b

    with pytest.raises(RegionExhaustedError):
        control.allocate(1, ("tor-a", "tor-b"))
    # tor-a was rolled back, so the task can be re-tried on it alone.
    assert control.allocate(1, ("tor-a",))


def test_fetch_after_deallocate_rejected():
    control = make_control()
    control.allocate(1, ("switch",))
    assert control.fetch_and_reset(1, 0) == {}
    control.deallocate(1)
    with pytest.raises(TaskStateError, match="holds no regions"):
        control.fetch_and_reset(1, 0)


def test_switches_of_unknown_task_rejected():
    control = make_control()
    with pytest.raises(TaskStateError, match="holds no regions"):
        control.switches_of(123)


def test_deallocate_is_idempotent():
    control = make_control()
    control.allocate(1, ("switch",))
    control.deallocate(1)
    control.deallocate(1)  # releasing a released task is a no-op


def test_multi_switch_fetch_merges():
    """Fetches fan out over every involved TOR and merge commutatively."""

    class StubController:
        def __init__(self, table):
            self.table = table

        def allocate_region(self, task_id, size=None):
            return object()

        def fetch_and_reset(self, task_id, part):
            out, self.table = self.table, {}
            return out

        def deallocate(self, task_id):
            pass

    control = ControlPlane()
    control.register("tor-a", StubController({b"k": 1}))
    control.register("tor-b", StubController({b"k": 2, b"only-b": 5}))
    regions = control.allocate(7, ("tor-a", "tor-b"))
    assert set(regions) == {"tor-a", "tor-b"}
    assert control.fetch_and_reset(7, 0) == {b"k": 3, b"only-b": 5}
    # fetch-and-reset cleared both copies
    assert control.fetch_and_reset(7, 0) == {}
