"""Tests for sender-side multi-key packet construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.keyspace import KeyClass, KeySpaceLayout, unpad_key
from repro.core.packer import Packer, pack_stream


@pytest.fixture
def cfg():
    return AskConfig.small()  # 8 slots: 4 short + 2 groups of 2


def decode_payloads(payloads, cfg):
    """Reassemble the logical tuples carried by packed payloads."""
    layout = KeySpaceLayout(cfg)
    tuples = []
    for payload in payloads:
        if payload.is_long:
            for slot in payload.slots:
                if slot is not None:
                    tuples.append((slot.key, slot.value))
            continue
        for index in range(layout.num_short_slots):
            if payload.bitmap >> index & 1:
                slot = payload.slots[index]
                tuples.append((unpad_key(slot.key), slot.value))
        for group in range(layout.num_groups):
            slots = layout.group_slots(group)
            if payload.bitmap >> slots[0] & 1:
                segments = b"".join(payload.slots[s].key for s in slots)
                tuples.append((unpad_key(segments), payload.slots[slots[-1]].value))
    return tuples


def test_single_short_key(cfg):
    payloads, stats = pack_stream([(b"cat", 5)], cfg)
    assert len(payloads) == 1
    assert payloads[0].tuple_slots == 1
    assert decode_payloads(payloads, cfg) == [(b"cat", 5)]


def test_same_key_always_same_slot(cfg):
    payloads, _ = pack_stream([(b"cat", 1)] * 5, cfg)
    slots = set()
    for payload in payloads:
        (index,) = [i for i in range(cfg.num_aas) if payload.bitmap >> i & 1]
        slots.add(index)
    assert len(slots) == 1  # no single-key-multiple-spot


def test_one_tuple_per_subspace_per_packet(cfg):
    # Five occurrences of one key need five packets even though one packet
    # has room for more: an AA can absorb one tuple per pass.
    payloads, _ = pack_stream([(b"cat", 1)] * 5, cfg)
    assert len(payloads) == 5


def test_different_subspaces_share_one_packet(cfg):
    layout = KeySpaceLayout(cfg)
    keys, seen = [], set()
    i = 0
    while len(keys) < 3:
        key = ("k%02d" % i).encode()
        slot = layout.assign(key).primary_slot
        if slot not in seen:
            seen.add(slot)
            keys.append(key)
        i += 1
    payloads, _ = pack_stream([(k, 1) for k in keys], cfg)
    assert len(payloads) == 1
    assert payloads[0].tuple_slots == 3


def test_medium_key_occupies_its_group(cfg):
    payloads, stats = pack_stream([(b"yours", 7)], cfg)
    assert len(payloads) == 1
    payload = payloads[0]
    assert payload.bitmap.bit_count() == cfg.medium_group_width
    assert stats.medium_tuples == 1
    assert decode_payloads(payloads, cfg) == [(b"yours", 7)]


def test_medium_value_rides_in_last_segment(cfg):
    layout = KeySpaceLayout(cfg)
    payloads, _ = pack_stream([(b"yours", 7)], cfg)
    payload = payloads[0]
    group = layout.group_of_slot(
        next(i for i in range(cfg.num_aas) if payload.bitmap >> i & 1)
    )
    first, last = layout.group_slots(group)
    assert payload.slots[first].value == 0
    assert payload.slots[last].value == 7


def test_long_keys_batched_separately(cfg):
    long_keys = [(b"averylongkey-%02d" % i, i) for i in range(10)]
    payloads, stats = pack_stream(long_keys + [(b"cat", 1)], cfg)
    normal = [p for p in payloads if not p.is_long]
    long = [p for p in payloads if p.is_long]
    assert len(normal) == 1
    assert stats.long_tuples == 10
    assert len(long) == -(-10 // cfg.num_aas)
    assert sorted(decode_payloads(payloads, cfg)) == sorted(long_keys + [(b"cat", 1)])


def test_long_batch_capped_at_num_slots(cfg):
    long_keys = [(b"longkey-%03d-xx" % i, 1) for i in range(cfg.num_aas + 3)]
    payloads, _ = pack_stream(long_keys, cfg)
    assert all(len(p.slots) <= cfg.num_aas for p in payloads)


def test_blank_slot_accounting(cfg):
    _, stats = pack_stream([(b"cat", 1)], cfg)
    assert stats.blank_slots == cfg.num_aas - 1
    assert stats.packets == 1


def test_occupancy_histogram_counts_logical_tuples(cfg):
    _, stats = pack_stream([(b"yours", 1)], cfg)  # one medium tuple, 2 slots
    assert stats.occupancy_histogram == {1: 1}


def test_mean_and_cdf(cfg):
    _, stats = pack_stream([(b"cat", 1), (b"cat", 1)], cfg)
    assert stats.mean_occupied_slots() == 1.0
    assert stats.occupancy_cdf() == [(1, 1.0)]


def test_values_masked_to_register_width():
    cfg = AskConfig.small(value_bits=8)
    payloads, _ = pack_stream([(b"cat", 0x1FF)], cfg)
    tuples = decode_payloads(payloads, cfg)
    assert tuples == [(b"cat", 0xFF)]


def test_empty_stream_yields_nothing(cfg):
    payloads, stats = pack_stream([], cfg)
    assert payloads == []
    assert stats.packets == 0


def test_pending_flag(cfg):
    packer = Packer(cfg)
    assert not packer.pending
    packer.add(b"cat", 1)
    assert packer.pending
    list(packer.payloads())
    assert not packer.pending


def test_stats_tuple_class_counters(cfg):
    stream = [(b"cat", 1), (b"medium", 1), (b"a-very-long-key!", 1)]
    _, stats = pack_stream(stream, cfg)
    assert stats.tuples_in == 3
    assert (stats.short_tuples, stats.medium_tuples, stats.long_tuples) == (1, 1, 1)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=12), st.integers(0, 2**31)),
        max_size=60,
    )
)
def test_packing_preserves_the_tuple_multiset(stream):
    """Every tuple ends up in exactly one payload slot, unchanged."""
    cfg = AskConfig.small()
    payloads, _ = pack_stream(stream, cfg)
    packed = decode_payloads(payloads, cfg)
    assert sorted(packed) == sorted((k, v & cfg.value_mask) for k, v in stream)
