"""Tests for host-side retransmit timers and the receive window."""

import pytest

from repro.net.simulator import Simulator
from repro.transport.reliability import ReceiveWindow, RetransmitTimers
from repro.transport.window import SlidingWindow


# ---------------------------------------------------------------------------
# ReceiveWindow
# ---------------------------------------------------------------------------
def test_first_arrival_is_new():
    window = ReceiveWindow(8)
    assert window.is_new(0)
    assert window.accepted == 1


def test_repeat_arrival_is_duplicate():
    window = ReceiveWindow(8)
    window.is_new(3)
    assert not window.is_new(3)
    assert window.duplicates == 1


def test_out_of_order_first_arrivals_are_new():
    window = ReceiveWindow(8)
    assert window.is_new(5)
    assert window.is_new(2)
    assert window.is_new(7)


def test_stale_arrival_treated_as_duplicate():
    window = ReceiveWindow(4)
    window.is_new(10)
    assert not window.is_new(6)  # 6 <= 10 - 4


def test_pruning_keeps_memory_bounded():
    window = ReceiveWindow(4)
    for seq in range(1000):
        window.is_new(seq)
    assert len(window._seen) <= 4


def test_seq_zero_pruned_at_floor():
    # Seed regression: the prune ran only when ``floor > 0``, so seq 0
    # stayed resident forever once the window moved past it.
    window = ReceiveWindow(4)
    window.is_new(0)
    window.is_new(4)  # floor is now exactly 0: seq 0 is stale
    assert 0 not in window._seen
    assert window._seen == {4}


def test_window_floor_sequence_is_stale_and_evicted():
    window = ReceiveWindow(4)
    for seq in (0, 1, 2, 3, 4):
        window.is_new(seq)
    # 0 is at the floor (max_seq - window): stale by the guard, gone from
    # the live set; 1..4 are the W live residues.
    assert not window.is_new(0)
    assert window._seen == {1, 2, 3, 4}


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        ReceiveWindow(0)


def test_gap_sequences_never_marked_seen():
    window = ReceiveWindow(8)
    window.is_new(0)
    window.is_new(4)
    assert window.is_new(2)  # the gap arrives late but in-window


# ---------------------------------------------------------------------------
# RetransmitTimers
# ---------------------------------------------------------------------------
def _timer_harness(timeout_ns=1000):
    sim = Simulator()
    window = SlidingWindow(size=4)
    resent = []
    timers = RetransmitTimers(sim, window, timeout_ns, resent.append)
    return sim, window, timers, resent


def test_timer_fires_after_timeout_and_rearms():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    sim.run(until=3500)
    assert len(resent) == 3
    assert timers.retransmissions == 3


def test_cancel_stops_retransmission():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    timers.cancel(entry)
    sim.run(until=10_000)
    assert resent == []


def test_acked_entry_not_retransmitted_even_if_timer_fires():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    window.ack(entry.seq)  # acked but timer not cancelled
    sim.run(until=5000)
    assert resent == []


def test_rearm_replaces_previous_timer():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    sim.run(until=500)
    timers.arm(entry)  # e.g. retransmitted by other means
    sim.run(until=1400)
    assert resent == []  # original 1000 ns deadline was replaced
    sim.run(until=1600)
    assert len(resent) == 1
