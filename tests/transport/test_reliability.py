"""Tests for host-side retransmit timers and the receive window."""

import pytest

from repro.net.simulator import Simulator
from repro.transport.reliability import ReceiveWindow, RetransmitTimers
from repro.transport.window import SlidingWindow


# ---------------------------------------------------------------------------
# ReceiveWindow
# ---------------------------------------------------------------------------
def test_first_arrival_is_new():
    window = ReceiveWindow(8)
    assert window.is_new(0)
    assert window.accepted == 1


def test_repeat_arrival_is_duplicate():
    window = ReceiveWindow(8)
    window.is_new(3)
    assert not window.is_new(3)
    assert window.duplicates == 1


def test_out_of_order_first_arrivals_are_new():
    window = ReceiveWindow(8)
    assert window.is_new(5)
    assert window.is_new(2)
    assert window.is_new(7)


def test_stale_arrival_treated_as_duplicate():
    window = ReceiveWindow(4)
    window.is_new(10)
    assert not window.is_new(6)  # 6 <= 10 - 4


def test_pruning_keeps_memory_bounded():
    window = ReceiveWindow(4)
    for seq in range(1000):
        window.is_new(seq)
    assert len(window._seen) <= 4


def test_seq_zero_pruned_at_floor():
    # Seed regression: the prune ran only when ``floor > 0``, so seq 0
    # stayed resident forever once the window moved past it.
    window = ReceiveWindow(4)
    window.is_new(0)
    window.is_new(4)  # floor is now exactly 0: seq 0 is stale
    assert 0 not in window._seen
    assert window._seen == {4}


def test_window_floor_sequence_is_stale_and_evicted():
    window = ReceiveWindow(4)
    for seq in (0, 1, 2, 3, 4):
        window.is_new(seq)
    # 0 is at the floor (max_seq - window): stale by the guard, gone from
    # the live set; 1..4 are the W live residues.
    assert not window.is_new(0)
    assert window._seen == {1, 2, 3, 4}


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        ReceiveWindow(0)


def test_gap_sequences_never_marked_seen():
    window = ReceiveWindow(8)
    window.is_new(0)
    window.is_new(4)
    assert window.is_new(2)  # the gap arrives late but in-window


# ---------------------------------------------------------------------------
# RetransmitTimers
# ---------------------------------------------------------------------------
def _timer_harness(timeout_ns=1000):
    sim = Simulator()
    window = SlidingWindow(size=4)
    resent = []
    timers = RetransmitTimers(sim, window, timeout_ns, resent.append)
    return sim, window, timers, resent


def test_timer_fires_after_timeout_and_rearms():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    sim.run(until=3500)
    assert len(resent) == 3
    assert timers.retransmissions == 3


def test_cancel_stops_retransmission():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    timers.cancel(entry)
    sim.run(until=10_000)
    assert resent == []


def test_acked_entry_not_retransmitted_even_if_timer_fires():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    window.ack(entry.seq)  # acked but timer not cancelled
    sim.run(until=5000)
    assert resent == []


def test_rearm_replaces_previous_timer():
    sim, window, timers, resent = _timer_harness(1000)
    entry = window.open("p")
    timers.arm(entry)
    sim.run(until=500)
    timers.arm(entry)  # e.g. retransmitted by other means
    sim.run(until=1400)
    assert resent == []  # original 1000 ns deadline was replaced
    sim.run(until=1600)
    assert len(resent) == 1


# ---------------------------------------------------------------------------
# Give-up / backoff-cap interaction
# ---------------------------------------------------------------------------
def test_capped_backoff_cannot_slide_past_give_up_deadline():
    # Regression guard: with backoff growing toward the cap, the nth
    # re-arm's natural delay can overshoot ``first_sent + give_up_ns``.
    # The arm path must clamp the delay so the timer lands exactly on the
    # deadline and fires on_give_up there — not one full capped delay late.
    sim = Simulator()
    window = SlidingWindow(size=4)
    resent, gave_up = [], []
    timers = RetransmitTimers(
        sim,
        window,
        1000,
        resent.append,
        backoff=4.0,
        backoff_cap_ns=8000,
        give_up_ns=6000,
        on_give_up=gave_up.append,
    )
    entry = window.open("p")
    entry.first_sent_ns = sim.now
    entry.transmissions = 1

    def resend(e):
        resent.append(sim.now)
        e.transmissions += 1

    timers._resend = resend
    timers.arm(entry)
    # Fires at 1000 (resend, next delay 4000 -> 5000), then the next
    # natural delay would be 16000 capped to 8000 -> t=13000, past the
    # 6000 deadline.  The clamp must pin the third firing to exactly 6000,
    # where the deadline check converts it into the give-up.
    sim.run(until=20_000)
    assert resent == [1000, 5000]
    assert timers.give_ups == 1
    assert gave_up == [entry]


def test_give_up_fire_time_is_exactly_the_deadline():
    sim = Simulator()
    window = SlidingWindow(size=4)
    fired_at = []
    timers = RetransmitTimers(
        sim,
        window,
        1000,
        lambda e: None,
        backoff=8.0,
        backoff_cap_ns=50_000,
        give_up_ns=2500,
        on_give_up=lambda e: fired_at.append(sim.now),
    )
    entry = window.open("p")
    entry.first_sent_ns = sim.now
    entry.transmissions = 1

    def resend(e):
        e.transmissions += 1

    timers._resend = resend
    timers.arm(entry)
    sim.run(until=100_000)
    # t=1000 resend (next natural delay 8000 > 2500-1000): clamped to 2500.
    assert fired_at == [2500]


# ---------------------------------------------------------------------------
# AdaptiveRto estimator
# ---------------------------------------------------------------------------
def test_adaptive_rto_starts_at_clamped_initial():
    from repro.transport.reliability import AdaptiveRto

    est = AdaptiveRto(100_000, 50_000, 10_000_000)
    assert est.rto_ns() == 100_000
    est = AdaptiveRto(10, 50_000, 10_000_000)
    assert est.rto_ns() == 50_000


def test_adaptive_rto_tracks_inflation_up_and_down():
    from repro.transport.reliability import AdaptiveRto

    est = AdaptiveRto(100_000, 50_000, 10_000_000)
    for _ in range(50):
        est.observe(40_000)
    calm = est.rto_ns()
    assert calm == 50_000  # srtt+4var converged under the floor: clamped
    for _ in range(50):
        est.observe(160_000)  # 4x inflation
    inflated = est.rto_ns()
    assert inflated > 160_000  # srtt ~160k plus variance headroom
    for _ in range(100):
        est.observe(40_000)
    assert est.rto_ns() < inflated  # follows the path back down


def test_adaptive_rto_timeout_backoff_resets_on_clean_sample():
    from repro.transport.reliability import AdaptiveRto

    est = AdaptiveRto(100_000, 50_000, 10_000_000)
    est.observe(40_000)
    base = est.rto_ns()
    est.on_timeout()
    assert est.rto_ns() == min(base * 2, 10_000_000)
    est.on_timeout()
    assert est.rto_ns() == min(base * 4, 10_000_000)
    est.observe(40_000)  # Karn: a clean sample resets the backoff
    assert est.rto_ns() <= base


def test_adaptive_rto_rejects_bad_bounds():
    from repro.transport.reliability import AdaptiveRto

    with pytest.raises(ValueError):
        AdaptiveRto(1000, 0, 10)
    with pytest.raises(ValueError):
        AdaptiveRto(1000, 100, 50)


def test_estimator_owns_delay_and_backoff():
    from repro.transport.reliability import AdaptiveRto

    sim = Simulator()
    window = SlidingWindow(size=4)
    est = AdaptiveRto(1000, 500, 1_000_000)
    resent = []

    timers = RetransmitTimers(
        sim, window, 1000, lambda e: None,
        backoff=4.0, backoff_cap_ns=100_000, estimator=est,
    )

    def resend(e):
        resent.append(sim.now)
        e.transmissions += 1

    timers._resend = resend
    entry = window.open("p")
    entry.first_sent_ns = sim.now
    entry.transmissions = 1
    timers.arm(entry)
    # Estimator path ignores the config backoff factor: firings at 1000,
    # then estimator-doubled 2000 -> 3000, 4000 -> 7000 (not 4**n).
    sim.run(until=3500)
    assert len(resent) == 2
    assert timers.timeouts == 2


def test_note_ack_tracks_min_rtt_and_flags_spurious():
    sim = Simulator()
    window = SlidingWindow(size=8)
    timers = RetransmitTimers(sim, window, 1000, lambda e: None)

    first = window.open("a")
    first.transmissions = 1
    first.last_sent_ns = 0
    sim.call_at(400, lambda: None)
    sim.run()  # now == 400
    timers.note_ack(first)  # clean sample: min_rtt = 400
    assert timers.min_rtt_ns == 400
    assert timers.spurious_retransmissions == 0

    # A retransmitted entry whose ACK lands 100ns after its last send:
    # faster than any network round trip ever observed, so the ACK must
    # answer an earlier copy — both extra copies were spurious.
    second = window.open("b")
    second.transmissions = 3
    second.last_sent_ns = sim.now - 100
    timers.note_ack(second)
    assert timers.spurious_retransmissions == 2

    # A retransmitted entry acked slower than min_rtt is ambiguous: not
    # counted (Karn-style conservatism).
    third = window.open("c")
    third.transmissions = 2
    third.last_sent_ns = sim.now - 900
    timers.note_ack(third)
    assert timers.spurious_retransmissions == 2
