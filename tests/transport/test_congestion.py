"""Tests for the ECN/AIMD congestion control (§7)."""

import pytest

from repro.net.simulator import Simulator
from repro.transport.congestion import CongestionWindow


def _cw(max_window=16, initial=4.0, **kwargs):
    return Simulator(), CongestionWindow(Simulator(), max_window, initial, **kwargs)


def test_additive_increase_on_clean_acks():
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=16, initial=4.0)
    before = cw.cwnd
    for _ in range(4):  # one window of ACKs ~ +1
        cw.on_ack(ecn_echo=False)
    assert cw.cwnd == pytest.approx(before + 1, abs=0.1)


def test_multiplicative_decrease_on_ecn():
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=16, initial=8.0)
    cw.on_ack(ecn_echo=True)
    assert cw.cwnd == 4.0
    assert cw.decreases == 1


def test_at_most_one_decrease_per_freeze_period():
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=16, initial=8.0, freeze_ns=1000)
    cw.on_ack(ecn_echo=True)
    cw.on_ack(ecn_echo=True)  # still frozen
    assert cw.cwnd == 4.0
    sim.schedule(2000, lambda: None)
    sim.run()
    cw.on_ack(ecn_echo=True)
    assert cw.cwnd == 2.0


def test_never_exceeds_the_reliability_window():
    # §7: "the congestion window should not exceed the maximum window
    # defined in the reliability mechanism".
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=8, initial=8.0)
    for _ in range(1000):
        cw.on_ack(ecn_echo=False)
    assert cw.cwnd <= 8.0


def test_never_falls_below_minimum():
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=16, initial=2.0, minimum=1.0, freeze_ns=0)
    for _ in range(10):
        cw.on_ack(ecn_echo=True)
    assert cw.cwnd >= 1.0


def test_timeout_collapses_to_minimum():
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=16, initial=12.0, minimum=1.0)
    cw.on_timeout()
    assert cw.cwnd == 1.0


def test_allows_gates_on_integer_window():
    sim = Simulator()
    cw = CongestionWindow(sim, max_window=16, initial=2.5)
    assert cw.allows(0) and cw.allows(1)
    assert not cw.allows(2)  # int(2.5) == 2 packets at a time


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        CongestionWindow(sim, max_window=4, initial=8.0)
    with pytest.raises(ValueError):
        CongestionWindow(sim, max_window=4, initial=2.0, minimum=3.0)
