"""Property-based equivalence: optimized hot paths vs the seed oracles.

The O(1) reimplementations in :mod:`repro.transport.window`,
:mod:`repro.transport.reliability` and :mod:`repro.net.simulator` must make
byte-identical decisions to the seed code preserved in
:mod:`repro.transport.reference`.  Hypothesis drives both through random
loss/reorder/duplication schedules and random open/ack interleavings and
compares every observable at every step.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.simulator import Simulator
from repro.transport.reference import (
    ReferenceReceiveWindow,
    ReferenceSimulator,
    ReferenceSlidingWindow,
    reference_mode,
)
from repro.transport.reliability import ReceiveWindow
from repro.transport.window import SlidingWindow


# ---------------------------------------------------------------------------
# ReceiveWindow ≡ ReferenceReceiveWindow
# ---------------------------------------------------------------------------
@given(
    window=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    length=st.integers(min_value=1, max_value=300),
)
@settings(max_examples=200, deadline=None)
def test_receive_window_decisions_match_reference(window, seed, length):
    """A lossy/reordered/duplicated arrival stream gets identical verdicts."""
    rng = random.Random(seed)
    new = ReceiveWindow(window)
    ref = ReferenceReceiveWindow(window)
    next_seq = 0
    inflight: list[int] = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.5 or not inflight:
            # fresh transmission (possibly several, simulating a burst)
            inflight.append(next_seq)
            next_seq += 1
        if roll < 0.15 and inflight:
            # duplicate of something still in flight
            inflight.append(rng.choice(inflight))
        if not inflight:
            continue
        # deliver a random in-flight packet (reordering), sometimes keeping
        # it around (duplication), sometimes dropping one (loss)
        index = rng.randrange(len(inflight))
        seq = inflight[index]
        if rng.random() < 0.8:
            inflight.pop(index)
        if rng.random() < 0.1 and inflight:
            inflight.pop(rng.randrange(len(inflight)))  # loss
        assert new.is_new(seq) == ref.is_new(seq), f"seq {seq} diverged"
        assert new.max_seq == ref.max_seq
        assert new.accepted == ref.accepted
        assert new.duplicates == ref.duplicates
        # The ring's live set must match the reference set *within the live
        # window* (the reference deliberately retains the seed's floor==0
        # leak, so compare only above the floor).
        floor = ref.max_seq - ref.window
        assert new._seen == {s for s in ref._seen if s > floor}


@given(
    seqs=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200),
    window=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=200, deadline=None)
def test_receive_window_arbitrary_sequences_match_reference(seqs, window):
    """Even adversarial (non-protocol) arrival orders get identical verdicts."""
    new = ReceiveWindow(window)
    ref = ReferenceReceiveWindow(window)
    for seq in seqs:
        assert new.is_new(seq) == ref.is_new(seq)
    assert (new.accepted, new.duplicates) == (ref.accepted, ref.duplicates)


# ---------------------------------------------------------------------------
# SlidingWindow ≡ ReferenceSlidingWindow
# ---------------------------------------------------------------------------
@given(
    size=st.integers(min_value=1, max_value=8),
    ops=st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=200),
)
@settings(max_examples=200, deadline=None)
def test_sliding_window_decisions_match_reference(size, ops):
    """Random open/ack interleavings leave both windows in identical states.

    Each op draw picks open vs ack; acks target a pseudo-random in-flight
    (or already-acked, for the duplicate-ack path) sequence number.
    """
    new = SlidingWindow(size)
    ref = ReferenceSlidingWindow(size)
    for op in ops:
        assert new.base == ref.base
        assert new.can_send() == ref.can_send()
        if op % 2 == 0 and new.can_send():
            opened_new = new.open(payload=op)
            opened_ref = ref.open(payload=op)
            assert opened_new.seq == opened_ref.seq
        else:
            # ack a pseudo-random seq at or below next_seq: sometimes
            # in flight, sometimes already acked, sometimes never opened
            if new.next_seq == 0:
                continue
            seq = op % (new.next_seq + 1)
            acked_new = new.ack(seq)
            acked_ref = ref.ack(seq)
            assert (acked_new is None) == (acked_ref is None)
            if acked_new is not None:
                assert acked_new.seq == acked_ref.seq
        assert new.base == ref.base
        assert new.next_seq == ref.next_seq
        assert new.in_flight == ref.in_flight
        assert new.is_empty == ref.is_empty
        assert [e.seq for e in new.outstanding()] == [
            e.seq for e in ref.outstanding()
        ]


# ---------------------------------------------------------------------------
# Simulator ≡ ReferenceSimulator
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_events=st.integers(min_value=1, max_value=120),
)
@settings(max_examples=100, deadline=None)
def test_simulator_schedule_matches_reference(seed, n_events):
    """Random schedule/cancel/nested-schedule programs fire identically."""

    def drive(sim_cls):
        sim = sim_cls()
        fired = []
        rng = random.Random(seed)
        events = []

        def cb(tag):
            fired.append((sim.now, tag))
            if rng.random() < 0.3:
                events.append(sim.schedule(rng.randrange(100), cb, f"n{tag}"))
            if rng.random() < 0.3 and events:
                events[rng.randrange(len(events))].cancel()

        for i in range(n_events):
            events.append(sim.schedule(rng.randrange(1000), cb, i))
            if rng.random() < 0.25:
                events[rng.randrange(len(events))].cancel()
        sim.run()
        return fired, sim.now, sim.events_processed

    assert drive(Simulator) == drive(ReferenceSimulator)


# ---------------------------------------------------------------------------
# End-to-end: a full lossy service run is schedule-identical in both modes
# ---------------------------------------------------------------------------
def test_full_service_run_matches_reference_mode():
    from repro import AskConfig, AskService, FaultModel

    def drive():
        config = AskConfig.small(window_size=16, retransmit_timeout_us=50.0)
        fault = FaultModel(
            loss_rate=0.08,
            duplicate_rate=0.05,
            reorder_rate=0.15,
            max_extra_delay_ns=150_000,
            seed=11,
        )
        service = AskService(config, hosts=3, fault=fault)
        rng = random.Random(3)
        keys = [("k%02d" % i).encode() for i in range(64)]
        streams = {
            f"h{i}": [(rng.choice(keys), rng.randint(1, 9)) for _ in range(800)]
            for i in range(2)
        }
        result = service.aggregate(streams, receiver="h2")
        return (
            service.sim.events_processed,
            service.sim.now,
            result.stats.retransmissions,
            result.stats.packets_received,
            result.stats.duplicate_packets_dropped,
            sorted(result.items()),
        )

    optimized = drive()
    with reference_mode():
        reference = drive()
    assert optimized == reference
