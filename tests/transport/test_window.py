"""Tests for the sender sliding window."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.window import SlidingWindow


def test_admits_window_size_packets():
    window = SlidingWindow(size=3)
    for expected_seq in range(3):
        assert window.can_send()
        assert window.open(f"p{expected_seq}").seq == expected_seq
    assert not window.can_send()


def test_open_beyond_window_raises():
    window = SlidingWindow(size=1)
    window.open("p")
    with pytest.raises(RuntimeError):
        window.open("q")


def test_base_is_lowest_unacked():
    window = SlidingWindow(size=4)
    for _ in range(4):
        window.open("p")
    window.ack(0)
    window.ack(2)
    assert window.base == 1


def test_ack_of_base_opens_exactly_that_much_room():
    window = SlidingWindow(size=2)
    window.open("a")
    window.open("b")
    window.ack(1)  # out-of-order ack: base still 0
    assert not window.can_send()
    window.ack(0)
    assert window.can_send()


def test_duplicate_ack_returns_none():
    window = SlidingWindow(size=2)
    entry = window.open("a")
    assert window.ack(0) is entry
    assert window.ack(0) is None


def test_ack_unknown_seq_returns_none():
    window = SlidingWindow(size=2)
    assert window.ack(17) is None


def test_outstanding_in_sequence_order():
    window = SlidingWindow(size=4)
    for _ in range(4):
        window.open("p")
    window.ack(1)
    assert [e.seq for e in window.outstanding()] == [0, 2, 3]


def test_idle_base_equals_next_seq():
    window = SlidingWindow(size=2)
    window.open("a")
    window.ack(0)
    assert window.is_empty
    assert window.base == window.next_seq == 1


@settings(max_examples=200, deadline=None)
@given(st.lists(st.booleans(), max_size=200))
def test_in_flight_span_never_exceeds_window(actions):
    """The invariant the switch's compact seen relies on: every in-flight
    sequence number satisfies seq > max_assigned - W."""
    window = SlidingWindow(size=5)
    for do_send in actions:
        if do_send and window.can_send():
            window.open("p")
        elif not window.is_empty:
            window.ack(window.base)
        if not window.is_empty:
            seqs = [e.seq for e in window.outstanding()]
            assert max(seqs) - min(seqs) < 5
            assert window.next_seq - min(seqs) <= 5
