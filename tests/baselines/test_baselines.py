"""Tests for the baseline systems."""

import pytest

from repro.baselines.atp import AtpModel
from repro.baselines.noaggr import NoAggrBaseline
from repro.baselines.preaggr import PreAggrBaseline, preaggregate
from repro.baselines.spark import SparkVariant, ask_akvps, spark_akvps, strawman_akvps
from repro.baselines.switchml import SwitchMlModel
from repro.workloads.stream import exact_aggregate


# ---------------------------------------------------------------------------
# PreAggr
# ---------------------------------------------------------------------------
def test_preaggregate_equals_reference():
    stream = [(b"b", 1), (b"a", 2), (b"b", 3), (b"c", 4)]
    assert preaggregate(stream) == exact_aggregate(stream)


def test_preaggregate_modular():
    assert preaggregate([(b"a", 200), (b"a", 100)], value_bits=8) == {b"a": 44}


def test_preaggr_run_result_and_costs():
    baseline = PreAggrBaseline(threads=8)
    streams = {"h0": [(b"a", 1)] * 10, "h1": [(b"a", 2), (b"b", 3)]}
    report = baseline.run(streams)
    assert report.result == {b"a": 12, b"b": 3}
    assert report.input_tuples == 12
    assert report.intermediate_tuples == 3
    assert report.cpu_percent == pytest.approx(14.29, abs=0.01)
    assert report.jct_seconds > 0


def test_preaggr_jct_dominated_by_sender_sort():
    baseline = PreAggrBaseline(threads=8)
    jct = baseline.jct_seconds(input_tuples=int(6.4e9), intermediate_tuples=32_000_000)
    assert jct == pytest.approx(111.2, rel=0.05)


def test_preaggr_more_threads_is_faster_but_sublinear():
    slow = PreAggrBaseline(threads=8).jct_seconds(int(1e9), 1000)
    fast = PreAggrBaseline(threads=32).jct_seconds(int(1e9), 1000)
    assert fast < slow
    assert fast > slow / 4


def test_preaggr_validates_threads():
    with pytest.raises(ValueError):
        PreAggrBaseline(threads=0)


# ---------------------------------------------------------------------------
# NoAggr
# ---------------------------------------------------------------------------
def test_noaggr_functional_result():
    report = NoAggrBaseline().run({"h0": [(b"a", 1)], "h1": [(b"a", 2)]})
    assert report.result == {b"a": 3}


def test_noaggr_per_sender_throughput_decays_as_1_over_n():
    baseline = NoAggrBaseline(channels=2)
    single = baseline.sender_goodput_gbps(1)
    at8 = baseline.sender_goodput_gbps(8)
    assert single == pytest.approx(91.75, abs=0.5)
    # Paper Fig. 13(b): 11.88 Gbps at 8 senders.
    assert at8 == pytest.approx(11.5, abs=0.7)


def test_noaggr_validates_sender_count():
    with pytest.raises(ValueError):
        NoAggrBaseline().sender_goodput_gbps(0)


# ---------------------------------------------------------------------------
# Spark / strawman / ASK AKV/s (Fig. 3 anchors)
# ---------------------------------------------------------------------------
def test_spark_akvps_interpolates_anchors():
    assert spark_akvps(16) == pytest.approx(29.06e6)
    assert spark_akvps(24) == pytest.approx((29.06e6 + 38.0e6) / 2, rel=0.01)
    assert spark_akvps(100) == pytest.approx(42.74e6)  # clamped past 56


def test_spark_akvps_validates_cores():
    with pytest.raises(ValueError):
        spark_akvps(0)


def test_strawman_reaches_line_rate_at_16_cores():
    # §2.2.2: "INA achieves line rate of 100 Gbps with 16 cores".
    line = 100e9 / (86 * 8)
    assert strawman_akvps(16) >= 0.98 * line
    assert strawman_akvps(17) == pytest.approx(line)  # fully line-limited
    assert strawman_akvps(8) < 0.6 * line


def test_strawman_peak_is_3_4x_spark_peak():
    assert strawman_akvps(56) / spark_akvps(56) == pytest.approx(3.4, abs=0.1)


def test_ask_akvps_155x_spark_at_equal_cores():
    assert ask_akvps(4) / spark_akvps(4) == pytest.approx(155, abs=5)


def test_spark_variants_cost_ordering():
    # Vanilla writes intermediates to disk; SHM and RDMA don't.
    assert (
        SparkVariant.VANILLA.intermediate_write_gbps()
        < SparkVariant.SHM.intermediate_write_gbps()
    )
    assert SparkVariant.RDMA.shuffle_gbps() > SparkVariant.VANILLA.shuffle_gbps()


# ---------------------------------------------------------------------------
# ATP / SwitchML
# ---------------------------------------------------------------------------
def test_ina_systems_cannot_do_key_value_streams():
    assert not AtpModel().supports_key_value_streams
    assert not SwitchMlModel().supports_key_value_streams


def test_ina_bandwidth_ordering_matches_fig12():
    # ASK ≈ ATP, both above SwitchML (small packets), per §5.6.
    from repro.apps.training.ps import TrainingSystem

    ask = TrainingSystem.ASK.effective_bandwidth_gbps()
    atp = AtpModel().effective_bandwidth_gbps()
    switchml = SwitchMlModel().effective_bandwidth_gbps()
    assert switchml < ask
    assert switchml < atp
    assert abs(ask - atp) / atp < 0.15  # "similar performance"


def test_atp_payload_geometry():
    assert AtpModel().payload_bytes() == 244
    assert SwitchMlModel().payload_bytes() == 128
