"""Tests for the functional synchronous-INA baseline and the §2.1.3 contrast."""

import numpy as np
import pytest

from repro.baselines.sync_ina import (
    SynchronizationError,
    SynchronousInaSwitch,
    synchronous_allreduce,
)
from repro.core.hashing import address_hash


# ---------------------------------------------------------------------------
# The legitimate use: value streams
# ---------------------------------------------------------------------------
def test_allreduce_matches_numpy():
    rng = np.random.default_rng(1)
    tensors = {w: rng.integers(-100, 100, size=64).tolist() for w in range(3)}
    result = synchronous_allreduce(tensors, num_slots=4, values_per_chunk=8)
    expected = (sum(np.array(t) for t in tensors.values())) & 0xFFFFFFFF
    assert np.array_equal(np.array(result) & 0xFFFFFFFF, expected)


def test_allreduce_exact_under_loss():
    rng = np.random.default_rng(2)
    tensors = {w: rng.integers(0, 50, size=32).tolist() for w in range(4)}
    lossless = synchronous_allreduce(tensors, loss_rate=0.0)
    lossy = synchronous_allreduce(tensors, loss_rate=0.3, seed=9)
    assert lossless == lossy


def test_slots_are_circularly_reused():
    # A long tensor streams through a tiny slot pool — the synchronous
    # pattern's key capability (§2.1.3).
    tensors = {0: list(range(400)), 1: list(range(400))}
    result = synchronous_allreduce(tensors, num_slots=2, values_per_chunk=4)
    assert result == [2 * v for v in range(400)]


def test_duplicates_suppressed_by_worker_bitmap():
    switch = SynchronousInaSwitch(num_slots=2, num_workers=2, values_per_chunk=1)
    switch.on_packet(0, 0, [5])
    switch.on_packet(0, 0, [5])  # retransmission
    result = switch.on_packet(1, 0, [7])
    assert result is not None and result.values == [12]
    assert switch.duplicates_suppressed == 1


def test_running_ahead_of_the_window_rejected():
    switch = SynchronousInaSwitch(num_slots=2, num_workers=2, values_per_chunk=1)
    switch.on_packet(0, 0, [1])  # chunk 0 incomplete (worker 1 missing)
    with pytest.raises(SynchronizationError):
        switch.on_packet(0, 2, [1])  # chunk 2 needs slot 0 — still busy


def test_misaligned_chunks_rejected():
    switch = SynchronousInaSwitch(num_slots=2, num_workers=2, values_per_chunk=4)
    with pytest.raises(ValueError):
        switch.on_packet(0, 0, [1, 2])
    with pytest.raises(ValueError):
        synchronous_allreduce({0: [1, 2], 1: [1, 2, 3]})


# ---------------------------------------------------------------------------
# The §2.1.3 contrast: key-value streams break the synchronous machine
# ---------------------------------------------------------------------------
def _kv_streams():
    # Realistic WordCount-ish shards: keys appear a *different* number of
    # times per worker, and some keys exist on one worker only.
    return {
        0: [(b"the", 3), (b"cat", 1), (b"the", 2), (b"rare0", 1)],
        1: [(b"the", 5), (b"dog", 4), (b"rare1", 1)],
    }


def test_key_value_streams_pin_slots_and_stall():
    switch = SynchronousInaSwitch(num_slots=4, num_workers=2, values_per_chunk=1)
    attempt = switch.attempt_key_value_stream(
        _kv_streams(), key_to_chunk=lambda k: address_hash(k) % 64
    )
    # Completion fires at most for keys that happen to appear exactly once
    # per worker; everything else pins aggregators or stalls outright.
    assert attempt.pinned_slots > 0
    assert attempt.pending_tuples + attempt.stalled_tuples > attempt.completed_keys


def test_ask_handles_the_same_streams_exactly():
    from repro.core.config import AskConfig
    from repro.core.service import AskService

    streams = {f"h{w}": s for w, s in _kv_streams().items()}
    service = AskService(AskConfig.small(), hosts=3)
    result = service.aggregate(streams, receiver="h2", check=True)
    assert result[b"the"] == 10
    assert result[b"rare0"] == 1


def test_value_streams_are_a_special_case_ask_also_covers():
    # The converse direction of §2.1.3: value streams *can* be adapted to
    # asynchronous aggregation (ASK's §5.6 backward compatibility).
    from repro.apps.training.allreduce import ask_allreduce
    from repro.core.config import AskConfig
    from repro.core.service import AskService

    tensors = {0: [1, 2, 3, 4], 1: [10, 20, 30, 40]}
    sync = synchronous_allreduce(tensors, num_slots=2, values_per_chunk=2)
    service = AskService(AskConfig.small(aggregators_per_aa=256), hosts=3)
    ask = ask_allreduce(
        service, {f"h{w}": t for w, t in tensors.items()}, receiver="h2"
    )
    assert list(ask) == sync
