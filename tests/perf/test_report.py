"""Tests for the run-report generator."""

from repro.core.config import AskConfig
from repro.core.multirack_service import MultiRackService
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.perf.report import service_report


def test_report_covers_tasks_switch_and_links():
    fault = FaultModel(loss_rate=0.05, duplicate_rate=0.05, seed=3)
    service = AskService(AskConfig.small(), hosts=2, fault=fault)
    service.aggregate({"h0": [(b"a", 1)] * 100}, receiver="h1", check=True)
    report = service_report(service)
    assert "tasks" in report
    assert "complete" in report
    assert "switch switch:" in report
    assert "h0->switch" in report and "switch->h1" in report
    assert "dropped" in report


def test_report_shows_ecn_marks_when_cc_enabled():
    cfg = AskConfig.small(
        congestion_control=True,
        ecn_threshold_bytes=1_000,
        link_bandwidth_gbps=1.0,
        retransmit_timeout_us=1000.0,
        window_size=64,
    )
    service = AskService(cfg, hosts=2)
    service.aggregate(
        {"h0": [(("k%02d" % (i % 30)).encode(), 1) for i in range(1500)]},
        receiver="h1",
        check=True,
    )
    report = service_report(service)
    marked = service.topology.uplink("h0").link.packets_marked
    assert marked > 0
    assert str(marked) in report


def test_report_works_for_multirack():
    service = MultiRackService(
        AskConfig.small(), racks={"r0": ["a", "b"], "r1": ["c"]}
    )
    service.aggregate({"a": [(b"x", 1)] * 40, "c": [(b"x", 2)] * 40}, receiver="b")
    report = service_report(service)
    assert "switch tor-r0:" in report and "switch tor-r1:" in report


def test_report_on_unfinished_service_is_safe():
    service = AskService(AskConfig.small(), hosts=2)
    service.submit({"h0": [(b"a", 1)]}, receiver="h1")
    report = service_report(service)  # nothing ran yet
    assert "submitted" in report
    assert "-" in report  # no elapsed time yet
