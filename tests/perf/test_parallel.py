"""The parallel experiment runner is a pure scheduling change: same plan,
same merged report, whatever the worker count or completion order."""

from repro.experiments import fig09_prioritization
from repro.perf import parallel


def test_plan_orders_experiments_then_chaos_and_shards_fig09():
    jobs = parallel.plan(["fig03", "fig09", "fig13"], chaos_seeds=(0, 7))
    labels = [job.label for job in jobs]
    assert labels == [
        "fig03",
        "fig09[Uniform]",
        "fig09[Zipf]",
        "fig09[Zipf (reverse)]",
        "fig13",
        "chaos[seed=0]",
        "chaos[seed=7]",
        "chaos-tree[seed=0]",
        "chaos-tree[seed=7]",
        "chaos-overload[seed=0]",
        "chaos-overload[seed=7]",
        "chaos-gray[seed=0]",
        "chaos-gray[seed=7]",
    ]


def test_plan_rejects_unknown_experiments():
    import pytest

    with pytest.raises(KeyError, match="nope"):
        parallel.plan(["nope"], chaos_seeds=())


def test_plan_without_sharding_keeps_fig09_whole():
    jobs = parallel.plan(["fig09"], chaos_seeds=(), shard=False)
    assert [job.kind for job in jobs] == ["experiment"]


def test_fig09_shard_merge_equals_direct_run():
    """Per-kind shards share no state, so the reassembled figure must be
    byte-identical to the unsharded sweep."""
    small = dict(num_keys=256, num_tuples=2000, ratio_exponents=range(-3, 1))
    direct = fig09_prioritization.format_report(fig09_prioritization.run(**small))
    partials = [
        parallel.JobResult(
            job=parallel.Job("fig09-shard", "fig09", shard=kind),
            ok=True,
            payload=fig09_prioritization.run(kinds=(kind,), **small),
        )
        for kind in fig09_prioritization.STREAM_KINDS
    ]
    assert parallel._merge_fig09(partials) == direct


def test_merge_keeps_plan_order_and_renders_errors_in_place():
    jobs = [
        parallel.Job("experiment", "fig03"),
        parallel.Job("experiment", "fig13"),
        parallel.Job("chaos", "chaos", seed=3),
    ]
    results = [
        parallel.JobResult(jobs[0], ok=True, payload="A"),
        parallel.JobResult(jobs[1], ok=False, payload="", error="boom"),
        parallel.JobResult(jobs[2], ok=True, payload="C"),
    ]
    sections = parallel.merge(jobs, results)
    assert sections == [
        ("fig03", "A"),
        ("fig13", "ERROR boom"),
        ("chaos[seed=3]", "C"),
    ]


def test_run_job_failure_is_captured_not_raised():
    result = parallel.run_job(parallel.Job("no-such-kind", "x"))
    assert not result.ok
    assert "no-such-kind" in result.error


def test_serial_and_parallel_suites_render_identically():
    names = ["fig03", "fig13"]
    serial = parallel.run_suite(names, chaos_seeds=(0,), workers=1)
    pooled = parallel.run_suite(names, chaos_seeds=(0,), workers=2)
    assert serial.ok and pooled.ok
    assert pooled.workers == 2
    assert parallel.verify_identical(serial, pooled)
    assert serial.text() == pooled.text()


def test_suite_text_has_one_section_per_merged_unit():
    run = parallel.run_suite(["fig03"], chaos_seeds=(), workers=1)
    assert [label for label, _ in run.sections] == ["fig03"]
    assert run.text().startswith("### fig03\n")
