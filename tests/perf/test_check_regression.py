"""The CI regression gate must fail *clearly* on damaged inputs.

A missing, empty, truncated or schema-less report file is an
infrastructure failure, not a perf regression — the gate has to say so
in one line on stderr and exit nonzero, never spray a traceback.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


def good_report(ratio: float = 2.0) -> dict:
    return {
        "benchmark": "hotpath",
        "mode": "smoke",
        "determinism": {
            "repeat_identical": True,
            "reference_identical": True,
            "vectorized_identical": True,
        },
        "speedup": {"packets_per_sec": ratio},
    }


def write(tmp_path: Path, name: str, content) -> Path:
    path = tmp_path / name
    if isinstance(content, (dict, list)):
        path.write_text(json.dumps(content))
    else:
        path.write_text(content)
    return path


def test_ok_against_itself(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report())
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_regression_fails(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report(ratio=1.0))
    base = write(tmp_path, "base.json", good_report(ratio=2.0))
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 1
    assert "FAIL" in proc.stdout


def _assert_clean_failure(proc, needle: str) -> None:
    assert proc.returncode != 0
    assert "Traceback" not in proc.stderr
    assert needle in proc.stderr


def test_missing_file_is_a_clear_error(tmp_path):
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(tmp_path / "nope.json"), "--baseline", str(base))
    _assert_clean_failure(proc, "cannot read benchmark report")


def test_empty_file_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", "")
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "is empty")


def test_invalid_json_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", "{not json")
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "not valid JSON")


def test_non_object_report_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", [1, 2, 3])
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "must be a JSON object")


def test_wrong_benchmark_kind_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", {"benchmark": "other"})
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "not a hotpath benchmark report")


def test_missing_speedup_section_is_a_clear_error(tmp_path):
    report = good_report()
    del report["speedup"]
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "speedup.packets_per_sec")


def test_vectorized_divergence_fails_the_gate(tmp_path):
    report = good_report()
    report["determinism"]["vectorized_identical"] = False
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "vectorized_identical")


def test_report_predating_the_vectorized_flag_fails_the_gate(tmp_path):
    report = good_report()
    del report["determinism"]["vectorized_identical"]
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "vectorized_identical")


def test_broken_baseline_is_also_caught(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report())
    base = write(tmp_path, "base.json", "")
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "is empty")
