"""The CI regression gate must fail *clearly* on damaged inputs.

A missing, empty, truncated or schema-less report file is an
infrastructure failure, not a perf regression — the gate has to say so
in one line on stderr and exit nonzero, never spray a traceback.

The gate's floor semantics are covered here too: each ratio leg compares
against the *best* value in the baseline's entire history (a slow decay
across runs must not ratchet the floor down), and the sharded leg's
absolute packet-hops/s gate arms only for full-mode reports.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


def history_entry(ratio: float = 2.0) -> dict:
    return {
        "speedup_packets_per_sec": ratio,
        "data_plane_scalar_packets_per_sec": 100.0,
        "data_plane_vector_packets_per_sec": 100.0 * ratio,
    }


def good_report(ratio: float = 2.0, history: list | None = None) -> dict:
    return {
        "benchmark": "hotpath",
        "mode": "smoke",
        "determinism": {
            "repeat_identical": True,
            "reference_identical": True,
            "vectorized_identical": True,
            "sharded_identical": True,
        },
        "speedup": {"packets_per_sec": ratio},
        "data_plane": {
            "scalar_packets_per_sec": 100.0,
            "vector_packets_per_sec": 100.0 * ratio,
        },
        "history": history if history is not None else [history_entry(ratio)],
    }


def write(tmp_path: Path, name: str, content) -> Path:
    path = tmp_path / name
    if isinstance(content, (dict, list)):
        path.write_text(json.dumps(content))
    else:
        path.write_text(content)
    return path


def test_ok_against_itself(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report())
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_regression_fails(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report(ratio=1.0))
    base = write(tmp_path, "base.json", good_report(ratio=2.0))
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 1
    assert "FAIL" in proc.stdout


def test_floor_is_the_best_historical_entry_not_the_latest(tmp_path):
    # History decayed 3.0 -> 2.0; the floor tracks the 3.0 peak, so a
    # fresh 2.5 (well above the latest entry) still fails at 20%.
    history = [history_entry(3.0), history_entry(2.0)]
    fresh = write(tmp_path, "fresh.json", good_report(ratio=2.2))
    base = write(tmp_path, "base.json", good_report(ratio=2.0, history=history))
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 1
    assert "best historical 3.000x" in proc.stdout
    # At the peak itself the gate passes.
    fresh_ok = write(tmp_path, "fresh_ok.json", good_report(ratio=3.0))
    assert run_gate(str(fresh_ok), "--baseline", str(base)).returncode == 0


def test_data_plane_leg_is_gated_independently(tmp_path):
    # Hot-path speedup holds steady but the data-plane ratio collapses.
    fresh_report = good_report(ratio=2.0)
    fresh_report["data_plane"]["vector_packets_per_sec"] = 100.0
    fresh = write(tmp_path, "fresh.json", fresh_report)
    base = write(tmp_path, "base.json", good_report(ratio=2.0))
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 1
    assert "data_plane_ratio" in proc.stdout


def test_cross_mode_comparison_doubles_the_ratio_tolerance(tmp_path):
    # CI compares its smoke run against the checked-in full baseline;
    # ratios shrink with the scenario, so the cross-mode floor is 40%
    # below best-historical instead of 20%.  1.3x vs a 2.0x history sits
    # between the two floors (1.2x and 1.6x): it must pass cross-mode
    # and fail same-mode.
    smoke_fresh = write(tmp_path, "fresh.json", good_report(ratio=1.3))
    full_base_report = good_report(ratio=2.0)
    full_base_report["mode"] = "full"
    full_base = write(tmp_path, "full_base.json", full_base_report)
    proc = run_gate(str(smoke_fresh), "--baseline", str(full_base))
    assert proc.returncode == 0, proc.stderr
    assert "cross-mode" in proc.stdout

    smoke_base = write(tmp_path, "smoke_base.json", good_report(ratio=2.0))
    proc = run_gate(str(smoke_fresh), "--baseline", str(smoke_base))
    assert proc.returncode == 1


def test_baseline_without_history_skips_ratio_legs(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report(ratio=1.0))
    base = write(tmp_path, "base.json", good_report(ratio=2.0, history=[]))
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 0, proc.stderr
    assert "skip" in proc.stdout


def _sharded_section(rate: float) -> dict:
    return {"packets_per_sec": rate, "execution": "inproc", "cpus": 1}


def test_full_mode_sharded_throughput_gate(tmp_path):
    base = write(tmp_path, "base.json", good_report())
    report = good_report()
    report["mode"] = "full"
    report["sharded"] = _sharded_section(80_000.0)  # >= 3x the 25.9k floor
    fresh = write(tmp_path, "fresh.json", report)
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 0, proc.stderr
    assert "sharded_throughput" in proc.stdout

    report["sharded"] = _sharded_section(40_000.0)  # ~1.5x: below the gate
    fresh = write(tmp_path, "fresh.json", report)
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 1
    assert "FAIL: sharded_throughput" in proc.stdout


def test_full_mode_without_sharded_leg_fails(tmp_path):
    base = write(tmp_path, "base.json", good_report())
    report = good_report()
    report["mode"] = "full"
    fresh = write(tmp_path, "fresh.json", report)
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 1
    assert "no sharded leg" in proc.stderr


def test_smoke_mode_skips_the_absolute_sharded_gate(tmp_path):
    # Smoke workloads are too small for absolute rates to mean anything;
    # identity is still enforced via the determinism flag.
    base = write(tmp_path, "base.json", good_report())
    report = good_report()
    report["sharded"] = _sharded_section(10.0)
    fresh = write(tmp_path, "fresh.json", report)
    proc = run_gate(str(fresh), "--baseline", str(base))
    assert proc.returncode == 0, proc.stderr
    assert "skip: sharded_throughput" in proc.stdout


def _assert_clean_failure(proc, needle: str) -> None:
    assert proc.returncode != 0
    assert "Traceback" not in proc.stderr
    assert needle in proc.stderr


def test_missing_file_is_a_clear_error(tmp_path):
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(tmp_path / "nope.json"), "--baseline", str(base))
    _assert_clean_failure(proc, "cannot read benchmark report")


def test_empty_file_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", "")
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "is empty")


def test_invalid_json_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", "{not json")
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "not valid JSON")


def test_non_object_report_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", [1, 2, 3])
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "must be a JSON object")


def test_wrong_benchmark_kind_is_a_clear_error(tmp_path):
    fresh = write(tmp_path, "fresh.json", {"benchmark": "other"})
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "not a hotpath benchmark report")


def test_missing_speedup_section_is_a_clear_error(tmp_path):
    report = good_report()
    del report["speedup"]
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "speedup.packets_per_sec")


def test_vectorized_divergence_fails_the_gate(tmp_path):
    report = good_report()
    report["determinism"]["vectorized_identical"] = False
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "vectorized_identical")


def test_sharded_divergence_fails_the_gate(tmp_path):
    report = good_report()
    report["determinism"]["sharded_identical"] = False
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "sharded_identical")


def test_report_predating_the_vectorized_flag_fails_the_gate(tmp_path):
    report = good_report()
    del report["determinism"]["vectorized_identical"]
    fresh = write(tmp_path, "fresh.json", report)
    base = write(tmp_path, "base.json", good_report())
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "vectorized_identical")


def test_broken_baseline_is_also_caught(tmp_path):
    fresh = write(tmp_path, "fresh.json", good_report())
    base = write(tmp_path, "base.json", "")
    proc = run_gate(str(fresh), "--baseline", str(base))
    _assert_clean_failure(proc, "is empty")
