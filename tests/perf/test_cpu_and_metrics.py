"""Tests for the CPU model and measurement helpers."""

import pytest

from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.perf.cpu import (
    cpu_percent_ask,
    cpu_percent_preaggr,
    hash_merge_seconds,
    preaggr_seconds,
)
from repro.perf.metrics import GoodputSample, Series, format_table, gbps, mean


def test_ask_cpu_matches_paper_percentages():
    # §5.2.1: 1.78 % / 3.57 % / 7.14 % for 1/2/4 data channels on 56 cores.
    assert cpu_percent_ask(1) == pytest.approx(1.786, abs=0.01)
    assert cpu_percent_ask(2) == pytest.approx(3.571, abs=0.01)
    assert cpu_percent_ask(4) == pytest.approx(7.143, abs=0.01)


def test_preaggr_cpu_anchors():
    assert cpu_percent_preaggr(8) == pytest.approx(14.29, abs=0.01)
    assert cpu_percent_preaggr(56) == 100.0
    assert cpu_percent_preaggr(100) == 100.0  # capped at the core count


def test_preaggr_seconds_matches_paper_anchors():
    # §5.2.1: 6.4e9 tuples -> 111.20 s @ 8 threads, 33.22 s @ 32 threads.
    assert preaggr_seconds(6.4e9, 8) == pytest.approx(111.2, rel=0.01)
    assert preaggr_seconds(6.4e9, 32) == pytest.approx(33.22, rel=0.01)


def test_preaggr_thread_scaling_is_sublinear_beyond_8():
    t8 = preaggr_seconds(6.4e9, 8)
    t32 = preaggr_seconds(6.4e9, 32)
    assert t32 > t8 / 4  # contention: 4x threads < 4x speedup


def test_preaggr_requires_threads():
    with pytest.raises(ValueError):
        preaggr_seconds(1000, 0)


def test_hash_merge_cheaper_than_sort_merge():
    assert hash_merge_seconds(1e9) < preaggr_seconds(1e9, 1)


def test_thread_efficiency_monotone():
    model = DEFAULT_COST_MODEL
    assert model.thread_efficiency(4) == 1.0
    assert model.thread_efficiency(16) > model.thread_efficiency(56)


# ---------------------------------------------------------------------------
# metrics helpers
# ---------------------------------------------------------------------------
def test_gbps_conversion():
    assert gbps(125, 10) == pytest.approx(100.0)  # 125 B in 10 ns = 100 Gbps
    assert gbps(100, 0) == 0.0


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0


def test_series_lookup_and_format():
    series = Series("test")
    series.add(1, 10.0)
    series.add(2, 20.0)
    assert series.y_at(2) == 20.0
    with pytest.raises(KeyError):
        series.y_at(3)
    assert "test" in series.format()


def test_format_table_aligns_columns():
    text = format_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert len({len(line) for line in lines[1:]}) <= 2  # consistent width


def test_goodput_sample_is_frozen():
    sample = GoodputSample(1, 2.0, "x")
    with pytest.raises(Exception):
        sample.x = 2  # type: ignore[misc]
