"""Tests pinning the goodput model to the paper's anchors."""

import pytest

from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.goodput import (
    ask_goodput_gbps,
    ask_wire_gbps,
    ideal_goodput_gbps,
    noaggr_goodput_gbps,
    pcie_bytes_per_packet,
    pps_bound_gbps,
)


def test_ideal_law_matches_paper_formula():
    # goodput = 8x / (8x + 78) * 100 (§5.3).
    assert ideal_goodput_gbps(32) == pytest.approx(256 / 334 * 100)
    assert ideal_goodput_gbps(1) == pytest.approx(8 / 86 * 100)


def test_goodput_linear_in_pps_bound_region():
    # Below 32 tuples the curve is PPS-bound and linear in x (§5.3),
    # except at the PCIe glitch points.
    g8 = ask_goodput_gbps(8)
    g16 = ask_goodput_gbps(16)
    assert g16 == pytest.approx(2 * g8, rel=1e-6)


def test_goodput_matches_ideal_beyond_32():
    for x in (34, 40, 48, 64):
        assert ask_goodput_gbps(x) == pytest.approx(ideal_goodput_gbps(x))


def test_crossover_at_32_tuples():
    # 32 is the last PPS-bound point; the paper: "when the tuples per packet
    # exceed 32, the experiment result matches the theoretical value".
    assert ask_goodput_gbps(32) < ideal_goodput_gbps(32)
    assert ask_goodput_gbps(34) == pytest.approx(ideal_goodput_gbps(34))


@pytest.mark.parametrize("glitch", [18, 26])
def test_pcie_glitches_at_paper_positions(glitch):
    below = ask_goodput_gbps(glitch - 1)
    at = ask_goodput_gbps(glitch)
    above = ask_goodput_gbps(glitch + 1)
    assert at < below and at < above  # a local dip


def test_no_other_glitches_in_pps_region():
    dips = []
    for x in range(2, 32):
        if (
            ask_goodput_gbps(x) < ask_goodput_gbps(x - 1)
            and ask_goodput_gbps(x) < ask_goodput_gbps(x + 1)
        ):
            dips.append(x)
    assert dips == [18, 26]


def test_ask_plateau_matches_fig13():
    # Paper Fig. 13(a): ASK goodput 73.96 Gbps with 4 channels.
    assert ask_goodput_gbps(32, channels=4) == pytest.approx(73.96, abs=0.5)


def test_ask_needs_four_channels_to_saturate():
    g = [ask_goodput_gbps(32, channels=c) for c in (1, 2, 3, 4)]
    assert g[0] < g[1] < g[2] < g[3]


def test_noaggr_peak_matches_fig13():
    # Paper: NoAggr goodput 91.75 Gbps, saturating with 2 channels.
    assert noaggr_goodput_gbps(2) == pytest.approx(91.75, abs=0.5)
    assert noaggr_goodput_gbps(1) < noaggr_goodput_gbps(2)
    assert noaggr_goodput_gbps(4) == pytest.approx(noaggr_goodput_gbps(2))


def test_noaggr_beats_ask_on_single_flow():
    # The bandwidth-overhead argument of §5.7.1.
    assert noaggr_goodput_gbps(2) > ask_goodput_gbps(32, 4)


def test_wire_exceeds_goodput_by_framing_overhead():
    goodput = ask_goodput_gbps(32, 4)
    wire = ask_wire_gbps(32, 4)
    assert wire / goodput == pytest.approx(334 / 256)


def test_pps_bound_scales_with_channels():
    assert pps_bound_gbps(32, 2) == pytest.approx(2 * pps_bound_gbps(32, 1))


def test_pcie_bytes_include_tlp_overhead():
    model = DEFAULT_COST_MODEL
    frame = model.frame_bytes(32 * 8)  # 310 B -> 2 TLPs
    assert pcie_bytes_per_packet(32) == frame + 2 * model.tlp_overhead_bytes


def test_pcie_stall_only_below_bulk_threshold():
    model = CostModel()
    # x=18 spills (frame 198 = 3*64+6) and is below the bulk threshold.
    assert pcie_bytes_per_packet(18) > model.frame_bytes(18 * 8) + model.tlp_overhead_bytes
    # x=34 spills identically (frame 326 = 5*64+6) but is bulk-DMA.
    assert pcie_bytes_per_packet(34) == model.frame_bytes(34 * 8) + 2 * model.tlp_overhead_bytes


def test_strawman_single_key_goodput_is_tiny():
    # One tuple per packet: 8/86 of the line rate at best (§2.3).
    assert ideal_goodput_gbps(1) < 10.0
