"""Shared fixtures for the ASK reproduction test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.config import AskConfig
from repro.net.simulator import Simulator

# The CI fuzz job runs the property suites with a bigger example budget
# than the default profile; the job itself is time-boxed with `timeout`,
# and `derandomize=False` keeps each run exploring fresh inputs.
settings.register_profile(
    "ci-fuzz",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_config() -> AskConfig:
    """The scaled-down geometry used by most functional tests."""
    return AskConfig.small()


@pytest.fixture
def tiny_config() -> AskConfig:
    """A minimal geometry (4 short slots, 1 medium group) for unit tests
    that need to hand-compute layouts."""
    return AskConfig(
        num_aas=4,
        aggregators_per_aa=16,
        medium_key_groups=1,
        medium_group_width=2,
        window_size=8,
        data_channels_per_host=1,
        swap_threshold_packets=16,
    )
