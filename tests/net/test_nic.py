"""Tests for the NIC PPS shaper."""

from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.simulator import Simulator


def _run(sim, nic, count, size=100):
    arrivals = []
    for i in range(count):
        nic.send(i, size, lambda p: arrivals.append((sim.now, p)))
    sim.run()
    return arrivals


def test_pps_cap_spaces_packets():
    sim = Simulator()
    nic = Nic(sim, Link(sim, bandwidth_gbps=None, latency_ns=0), max_pps=1e6)
    arrivals = _run(sim, nic, 3)
    times = [t for t, _ in arrivals]
    # 1 Mpps -> 1000 ns between launches.
    assert times == [0, 1000, 2000]


def test_no_cap_sends_immediately():
    sim = Simulator()
    nic = Nic(sim, Link(sim, bandwidth_gbps=None, latency_ns=0), max_pps=None)
    arrivals = _run(sim, nic, 5)
    assert [t for t, _ in arrivals] == [0, 0, 0, 0, 0]


def test_min_packet_gap():
    sim = Simulator()
    nic = Nic(sim, Link(sim, bandwidth_gbps=None, latency_ns=0), max_pps=9e6)
    assert nic.min_packet_gap_ns() == 111  # 1e9 / 9e6 rounded


def test_counters():
    sim = Simulator()
    nic = Nic(sim, Link(sim, bandwidth_gbps=None, latency_ns=0))
    _run(sim, nic, 4, size=50)
    assert nic.packets_sent == 4
    assert nic.bytes_sent == 200


def test_pps_and_serialization_compose():
    sim = Simulator()
    # PPS gap 1000 ns dominates the 10 ns serialization.
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0)
    nic = Nic(sim, link, max_pps=1e6)
    arrivals = _run(sim, nic, 2, size=125)  # 125 B == 10 ns at 100 Gbps
    assert [t for t, _ in arrivals] == [10, 1010]
