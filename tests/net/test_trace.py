"""Tests for packet traces."""

from repro.net.trace import PacketTrace, TraceRecord


def _sample() -> PacketTrace:
    trace = PacketTrace()
    trace.record(1, "switch", "ingress", "p1")
    trace.record(2, "switch", "ack", "p1")
    trace.record(3, "h0", "ingress", "p2")
    return trace


def test_record_and_len():
    trace = _sample()
    assert len(trace) == 3


def test_filter_by_site():
    assert len(_sample().filter(site="switch")) == 2


def test_filter_by_kind_and_predicate():
    trace = _sample()
    assert len(trace.filter(kind="ingress")) == 2
    assert len(trace.filter(kind="ingress", predicate=lambda r: r.time_ns > 1)) == 1


def test_disabled_trace_records_nothing():
    trace = PacketTrace(enabled=False)
    trace.record(1, "x", "y")
    assert len(trace) == 0


def test_count_and_iteration():
    trace = _sample()
    assert trace.count(site="h0") == 1
    assert [r.site for r in trace] == ["switch", "switch", "h0"]


def test_record_str_format():
    rec = TraceRecord(5, "switch", "drop", "pkt")
    text = str(rec)
    assert "switch" in text and "drop" in text and "5" in text
