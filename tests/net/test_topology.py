"""Tests for the star topology wiring."""

import pytest

from repro.net.fault import FaultModel
from repro.net.simulator import Simulator
from repro.net.topology import NetworkNode, StarTopology
from repro.net.trace import PacketTrace


class Sink(NetworkNode):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def _build(num_hosts=2, fault=None, trace=None):
    sim = Simulator()
    switch = Sink("switch")
    topo = StarTopology(sim, switch, bandwidth_gbps=None, latency_ns=10, fault=fault, trace=trace)
    hosts = [Sink(f"h{i}") for i in range(num_hosts)]
    for host in hosts:
        topo.attach_host(host)
    return sim, switch, topo, hosts


def test_uplink_reaches_switch():
    sim, switch, topo, hosts = _build()
    topo.send_to_switch("h0", "pkt", 100)
    sim.run()
    assert switch.received == ["pkt"]


def test_downlink_reaches_host():
    sim, switch, topo, hosts = _build()
    topo.send_to_host("h1", "pkt", 100)
    sim.run()
    assert hosts[1].received == ["pkt"]
    assert hosts[0].received == []


def test_duplicate_host_rejected():
    sim, switch, topo, hosts = _build()
    with pytest.raises(ValueError):
        topo.attach_host(Sink("h0"))


def test_host_names_listed_in_order():
    _, _, topo, _ = _build(3)
    assert topo.host_names == ["h0", "h1", "h2"]


def test_per_link_fault_models_are_independent_streams():
    fault = FaultModel(loss_rate=0.5, seed=11)
    sim, switch, topo, hosts = _build(2, fault=fault)
    up0 = topo.uplink("h0").link.fault
    up1 = topo.uplink("h1").link.fault
    down0 = topo.downlink("h0").link.fault
    assert up0 is not fault  # template copied, never shared
    seq0 = [up0.decide().drop for _ in range(50)]
    seq1 = [up1.decide().drop for _ in range(50)]
    seq2 = [down0.decide().drop for _ in range(50)]
    assert seq0 != seq1 or seq0 != seq2


def test_no_fault_template_means_reliable_links():
    _, _, topo, _ = _build(1, fault=None)
    assert topo.uplink("h0").link.fault.is_reliable


def test_trace_records_tx_and_rx():
    trace = PacketTrace()
    sim, switch, topo, hosts = _build(1, trace=trace)
    topo.send_to_switch("h0", "pkt", 64)
    sim.run()
    assert trace.count(kind="tx") == 1
    assert trace.count(kind="rx") == 1
    assert trace.records[0].site == "h0->switch"


def test_host_lookup():
    _, _, topo, hosts = _build(2)
    assert topo.host("h1") is hosts[1]
