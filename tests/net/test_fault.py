"""Tests for fault injection."""

import pytest

from repro.net.fault import FaultModel


def test_reliable_model_never_injects():
    model = FaultModel.reliable()
    assert model.is_reliable
    for _ in range(1000):
        decision = model.decide()
        assert not decision.drop
        assert not decision.duplicate
        assert decision.extra_delay_ns == 0


def test_rates_must_be_probabilities():
    with pytest.raises(ValueError):
        FaultModel(loss_rate=1.5)
    with pytest.raises(ValueError):
        FaultModel(duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        FaultModel(reorder_rate=2.0)


def test_loss_rate_one_drops_everything():
    model = FaultModel(loss_rate=1.0, seed=1)
    assert all(model.decide().drop for _ in range(100))


def test_duplicate_rate_one_duplicates_every_survivor():
    model = FaultModel(duplicate_rate=1.0, seed=1)
    for _ in range(100):
        decision = model.decide()
        assert decision.duplicate
        assert decision.duplicate_delay_ns >= 1


def test_same_seed_same_schedule():
    a = FaultModel(loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    b = FaultModel(loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    for _ in range(500):
        da, db = a.decide(), b.decide()
        assert (da.drop, da.duplicate, da.extra_delay_ns, da.duplicate_delay_ns) == (
            db.drop,
            db.duplicate,
            db.extra_delay_ns,
            db.duplicate_delay_ns,
        )


def test_different_seeds_differ():
    a = FaultModel(loss_rate=0.5, seed=1)
    b = FaultModel(loss_rate=0.5, seed=2)
    outcomes_a = [a.decide().drop for _ in range(200)]
    outcomes_b = [b.decide().drop for _ in range(200)]
    assert outcomes_a != outcomes_b


def test_loss_rate_statistics():
    model = FaultModel(loss_rate=0.25, seed=7)
    drops = sum(model.decide().drop for _ in range(10_000))
    assert 2_200 < drops < 2_800


def test_reorder_delay_bounded():
    model = FaultModel(reorder_rate=1.0, max_extra_delay_ns=500, seed=3)
    for _ in range(200):
        assert 1 <= model.decide().extra_delay_ns <= 500


def test_dropped_packet_not_also_duplicated():
    model = FaultModel(loss_rate=1.0, duplicate_rate=1.0, seed=5)
    decision = model.decide()
    assert decision.drop and not decision.duplicate


def test_is_reliable_false_with_any_rate():
    assert not FaultModel(loss_rate=0.01).is_reliable
    assert not FaultModel(duplicate_rate=0.01).is_reliable
    assert not FaultModel(reorder_rate=0.01).is_reliable


# ----------------------------------------------------------------------
# Per-link derivation (name-keyed child seeds)
# ----------------------------------------------------------------------
def _schedule(model, n=200):
    return [
        (d.drop, d.duplicate, d.extra_delay_ns, d.duplicate_delay_ns)
        for d in (model.decide() for _ in range(n))
    ]


def test_derive_is_stable_for_a_label():
    template = FaultModel(loss_rate=0.3, reorder_rate=0.1, seed=42)
    assert _schedule(template.derive("h0->switch")) == _schedule(
        template.derive("h0->switch")
    )


def test_derive_differs_across_labels():
    template = FaultModel(loss_rate=0.5, seed=42)
    assert _schedule(template.derive("h0->switch")) != _schedule(
        template.derive("h1->switch")
    )


def test_derive_keeps_rates():
    template = FaultModel(
        loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.1,
        max_extra_delay_ns=123, seed=9,
    )
    child = template.derive("x")
    assert (child.loss_rate, child.duplicate_rate, child.reorder_rate) == (
        0.3, 0.2, 0.1,
    )
    assert child.max_extra_delay_ns == 123
    assert child.seed != template.seed


def test_derive_does_not_consume_template_rng():
    a = FaultModel(loss_rate=0.5, seed=11)
    b = FaultModel(loss_rate=0.5, seed=11)
    a.derive("one"), a.derive("two")
    assert _schedule(a) == _schedule(b)


def test_link_faults_independent_of_construction_order():
    """The per-link loss sequence keys on the link name alone: attaching
    hosts in a different order must leave every link's schedule untouched
    (the seed implementation salted seeds with a construction counter,
    so reordering rewired every link's fault stream)."""
    from repro.core.packet import AskPacket, PacketFlag
    from repro.net.simulator import Simulator
    from repro.net.topology import StarTopology

    class Sink:
        def __init__(self, name):
            self.name = name
            self.got = []

        def receive(self, packet):
            self.got.append(packet.seq)

    def deliveries(host_order):
        sim = Simulator()
        switch = Sink("switch")
        star = StarTopology(
            sim, switch, fault=FaultModel(loss_rate=0.4, seed=5)
        )
        hosts = {name: Sink(name) for name in host_order}
        for name in host_order:
            star.attach_host(hosts[name])
        for seq in range(100):
            star.send_to_switch(
                "h1",
                AskPacket(PacketFlag.DATA, 1, "h1", "switch", 0, seq),
                100,
            )
        sim.run()
        return switch.got

    assert deliveries(["h0", "h1", "h2"]) == deliveries(["h2", "h1", "h0"])


# ----------------------------------------------------------------------
# Gilbert–Elliott burst loss
# ----------------------------------------------------------------------
def test_burst_params_must_be_probabilities():
    from repro.net.fault import GilbertElliott

    with pytest.raises(ValueError):
        GilbertElliott(p_good_bad=1.2)
    with pytest.raises(ValueError):
        GilbertElliott(p_bad_good=-0.1)
    with pytest.raises(ValueError):
        GilbertElliott(loss_good=3.0)
    with pytest.raises(ValueError):
        GilbertElliott(loss_bad=-1.0)


def test_burst_absorbing_bad_state_eventually_drops_everything():
    from repro.net.fault import GilbertElliott

    model = FaultModel(
        burst=GilbertElliott(p_good_bad=1.0, p_bad_good=0.0, loss_bad=1.0),
        seed=1,
    )
    # Every packet transitions good→bad before its loss draw, so all drop.
    assert all(model.decide().drop for _ in range(200))


def test_burst_never_entering_bad_state_never_drops():
    from repro.net.fault import GilbertElliott

    model = FaultModel(
        burst=GilbertElliott(p_good_bad=0.0, p_bad_good=0.5, loss_bad=1.0),
        seed=2,
    )
    assert not any(model.decide().drop for _ in range(1000))


def _max_drop_run(drops):
    best = run = 0
    for dropped in drops:
        run = run + 1 if dropped else 0
        best = max(best, run)
    return best


def test_burst_loss_is_correlated_where_iid_is_not():
    """At a matched ~50% marginal loss rate, the Gilbert–Elliott chain
    produces loss runs far longer than i.i.d. loss — the regime that
    actually stresses retransmission timers."""
    from repro.net.fault import GilbertElliott

    # Stationary P(bad) = 0.05 / (0.05 + 0.05) = 0.5; loss_bad=1 gives a
    # ~0.5 marginal drop rate with mean sojourn 1/0.05 = 20 packets.
    bursty = FaultModel(
        burst=GilbertElliott(p_good_bad=0.05, p_bad_good=0.05, loss_bad=1.0),
        seed=7,
    )
    iid = FaultModel(loss_rate=0.5, seed=7)
    n = 5_000
    burst_drops = [bursty.decide().drop for _ in range(n)]
    iid_drops = [iid.decide().drop for _ in range(n)]
    assert 0.35 < sum(burst_drops) / n < 0.65
    assert _max_drop_run(burst_drops) > 2 * _max_drop_run(iid_drops)


def test_burst_schedule_is_seed_deterministic():
    from repro.net.fault import GilbertElliott

    chain = GilbertElliott(p_good_bad=0.1, p_bad_good=0.3, loss_bad=0.8)
    a = FaultModel(burst=chain, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    b = FaultModel(burst=chain, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    assert _schedule(a, 500) == _schedule(b, 500)


def test_derive_keeps_burst_chain():
    from repro.net.fault import GilbertElliott

    chain = GilbertElliott(p_good_bad=0.2, p_bad_good=0.4, loss_bad=0.9)
    child = FaultModel(burst=chain, seed=3).derive("h0->switch")
    assert child.burst == chain
    # ... and a derived bursty link is itself stable per label.
    assert _schedule(child) == _schedule(FaultModel(burst=chain, seed=3).derive("h0->switch"))


def test_lossless_burst_chain_is_reliable():
    from repro.net.fault import GilbertElliott

    lossless = GilbertElliott(p_good_bad=0.5, p_bad_good=0.5, loss_good=0.0, loss_bad=0.0)
    assert lossless.is_lossless
    assert FaultModel(burst=lossless).is_reliable
    assert not FaultModel(burst=GilbertElliott(loss_bad=0.1)).is_reliable


def test_draw_order_contract_without_burst():
    """decide() draws loss → reorder → duplicate, at most one draw each,
    plus one delay draw per armed outcome.  Replaying the raw RNG in that
    documented order must reproduce the model's schedule exactly — the
    determinism contract that keeps old seeds stable as features land."""
    import random

    model = FaultModel(
        loss_rate=0.3, reorder_rate=0.4, duplicate_rate=0.5,
        max_extra_delay_ns=1000, seed=21,
    )
    rng = random.Random(21)
    for _ in range(500):
        decision = model.decide()
        if rng.random() < 0.3:
            assert decision.drop
            continue
        assert not decision.drop
        extra = rng.randint(1, 1000) if rng.random() < 0.4 else 0
        assert decision.extra_delay_ns == extra
        if rng.random() < 0.5:
            assert decision.duplicate
            assert decision.duplicate_delay_ns == rng.randint(1, 1000)
        else:
            assert not decision.duplicate


# ----------------------------------------------------------------------
# Corruption injection
# ----------------------------------------------------------------------
def test_corrupt_rate_must_be_probability():
    with pytest.raises(ValueError):
        FaultModel(corrupt_rate=1.5)
    with pytest.raises(ValueError):
        FaultModel(corrupt_rate=-0.1)


def test_corrupt_rate_one_corrupts_every_survivor():
    model = FaultModel(corrupt_rate=1.0, seed=3)
    for _ in range(100):
        decision = model.decide()
        assert decision.corrupt
        # A corrupted frame is never also duplicated or delayed: the
        # injected-corruption count stays one-to-one with deliveries.
        assert not decision.duplicate
        assert decision.extra_delay_ns == 0


def test_corrupt_rate_included_in_reliability_and_derive():
    model = FaultModel(corrupt_rate=0.25, seed=5)
    assert not model.is_reliable
    child = model.derive("h0->switch")
    assert child.corrupt_rate == 0.25
    assert not child.is_reliable


def test_zero_corrupt_rate_keeps_old_schedules_bit_identical():
    """Adding the corrupt field must not perturb any existing seeded
    schedule: a zero rate draws nothing from the RNG."""
    legacy = FaultModel(loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    extended = FaultModel(
        loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2, seed=99, corrupt_rate=0.0
    )
    for _ in range(500):
        da, db = legacy.decide(), extended.decide()
        assert (da.drop, da.duplicate, da.extra_delay_ns, da.duplicate_delay_ns) == (
            db.drop,
            db.duplicate,
            db.extra_delay_ns,
            db.duplicate_delay_ns,
        )


def test_draw_order_contract_with_corruption():
    """loss → corrupt → reorder → duplicate, corrupt returns early."""
    import random as _random

    model = FaultModel(
        loss_rate=0.2, corrupt_rate=0.3, reorder_rate=0.4, duplicate_rate=0.5,
        max_extra_delay_ns=1000, seed=77,
    )
    rng = _random.Random(77)
    for _ in range(500):
        decision = model.decide()
        if rng.random() < 0.2:
            assert decision.drop
            continue
        if rng.random() < 0.3:
            assert decision.corrupt
            continue
        assert not decision.corrupt
        extra = rng.randint(1, 1000) if rng.random() < 0.4 else 0
        assert decision.extra_delay_ns == extra
        if rng.random() < 0.5:
            assert decision.duplicate
            assert decision.duplicate_delay_ns == rng.randint(1, 1000)


def test_corrupt_bytes_always_differs_and_is_seeded():
    import random as _random

    from repro.net.fault import corrupt_bytes

    data = bytes(range(64))
    a = corrupt_bytes(data, _random.Random(9))
    b = corrupt_bytes(data, _random.Random(9))
    c = corrupt_bytes(data, _random.Random(10))
    assert a == b  # same seed, same damage
    assert a != data
    assert len(a) == len(data)
    assert a != c or True  # different seeds usually differ; never crash
    # 1..3 bit flips, never more.
    flipped = sum(bin(x ^ y).count("1") for x, y in zip(a, data))
    assert 1 <= flipped <= 3


def test_corrupt_bytes_on_empty_datagram_is_a_seeded_noop():
    """Regression: an empty payload has no bits to flip.  It must come
    back unchanged (the old code fabricated a 1-byte ``b"\\xff"`` frame)
    and must not draw from the RNG — otherwise one degenerate datagram
    would shift every later decision of a seeded fault schedule."""
    import random as _random

    from repro.net.fault import corrupt_bytes

    rng = _random.Random(123)
    untouched = _random.Random(123)
    assert corrupt_bytes(b"", rng) == b""
    # The RNG stream is exactly where it started: the next draws agree
    # with a virgin generator of the same seed.
    assert [rng.random() for _ in range(8)] == [
        untouched.random() for _ in range(8)
    ]
    # Non-empty payloads still always come back damaged.
    assert corrupt_bytes(b"\x00", rng) != b"\x00"


def test_corrupt_packet_fields_changes_exactly_one_field():
    import random as _random

    from repro.core.packet import AskPacket, Slot
    from repro.net.fault import corrupt_packet_fields

    packet = AskPacket(
        0x1, 7, "h0", "h2", 1, 42, bitmap=0b101,
        slots=(Slot(b"a" * 8, 5), None, Slot(b"b" * 8, 9)),
    )
    for seed in range(50):
        mutated = corrupt_packet_fields(packet, _random.Random(seed))
        assert mutated is not packet
        assert type(mutated) is AskPacket
        # Addressing is carried by the fabric, not the payload: src/dst
        # never mutate (a damaged frame still arrives *somewhere* real).
        assert (mutated.src, mutated.dst) == ("h0", "h2")
        diffs = [
            name
            for name in ("flags", "task_id", "channel_index", "seq", "bitmap", "slots")
            if getattr(mutated, name) != getattr(packet, name)
        ]
        assert len(diffs) == 1, diffs
