"""Tests for fault injection."""

import pytest

from repro.net.fault import FaultModel


def test_reliable_model_never_injects():
    model = FaultModel.reliable()
    assert model.is_reliable
    for _ in range(1000):
        decision = model.decide()
        assert not decision.drop
        assert not decision.duplicate
        assert decision.extra_delay_ns == 0


def test_rates_must_be_probabilities():
    with pytest.raises(ValueError):
        FaultModel(loss_rate=1.5)
    with pytest.raises(ValueError):
        FaultModel(duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        FaultModel(reorder_rate=2.0)


def test_loss_rate_one_drops_everything():
    model = FaultModel(loss_rate=1.0, seed=1)
    assert all(model.decide().drop for _ in range(100))


def test_duplicate_rate_one_duplicates_every_survivor():
    model = FaultModel(duplicate_rate=1.0, seed=1)
    for _ in range(100):
        decision = model.decide()
        assert decision.duplicate
        assert decision.duplicate_delay_ns >= 1


def test_same_seed_same_schedule():
    a = FaultModel(loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    b = FaultModel(loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2, seed=99)
    for _ in range(500):
        da, db = a.decide(), b.decide()
        assert (da.drop, da.duplicate, da.extra_delay_ns, da.duplicate_delay_ns) == (
            db.drop,
            db.duplicate,
            db.extra_delay_ns,
            db.duplicate_delay_ns,
        )


def test_different_seeds_differ():
    a = FaultModel(loss_rate=0.5, seed=1)
    b = FaultModel(loss_rate=0.5, seed=2)
    outcomes_a = [a.decide().drop for _ in range(200)]
    outcomes_b = [b.decide().drop for _ in range(200)]
    assert outcomes_a != outcomes_b


def test_loss_rate_statistics():
    model = FaultModel(loss_rate=0.25, seed=7)
    drops = sum(model.decide().drop for _ in range(10_000))
    assert 2_200 < drops < 2_800


def test_reorder_delay_bounded():
    model = FaultModel(reorder_rate=1.0, max_extra_delay_ns=500, seed=3)
    for _ in range(200):
        assert 1 <= model.decide().extra_delay_ns <= 500


def test_dropped_packet_not_also_duplicated():
    model = FaultModel(loss_rate=1.0, duplicate_rate=1.0, seed=5)
    decision = model.decide()
    assert decision.drop and not decision.duplicate


def test_is_reliable_false_with_any_rate():
    assert not FaultModel(loss_rate=0.01).is_reliable
    assert not FaultModel(duplicate_rate=0.01).is_reliable
    assert not FaultModel(reorder_rate=0.01).is_reliable


# ----------------------------------------------------------------------
# Per-link derivation (name-keyed child seeds)
# ----------------------------------------------------------------------
def _schedule(model, n=200):
    return [
        (d.drop, d.duplicate, d.extra_delay_ns, d.duplicate_delay_ns)
        for d in (model.decide() for _ in range(n))
    ]


def test_derive_is_stable_for_a_label():
    template = FaultModel(loss_rate=0.3, reorder_rate=0.1, seed=42)
    assert _schedule(template.derive("h0->switch")) == _schedule(
        template.derive("h0->switch")
    )


def test_derive_differs_across_labels():
    template = FaultModel(loss_rate=0.5, seed=42)
    assert _schedule(template.derive("h0->switch")) != _schedule(
        template.derive("h1->switch")
    )


def test_derive_keeps_rates():
    template = FaultModel(
        loss_rate=0.3, duplicate_rate=0.2, reorder_rate=0.1,
        max_extra_delay_ns=123, seed=9,
    )
    child = template.derive("x")
    assert (child.loss_rate, child.duplicate_rate, child.reorder_rate) == (
        0.3, 0.2, 0.1,
    )
    assert child.max_extra_delay_ns == 123
    assert child.seed != template.seed


def test_derive_does_not_consume_template_rng():
    a = FaultModel(loss_rate=0.5, seed=11)
    b = FaultModel(loss_rate=0.5, seed=11)
    a.derive("one"), a.derive("two")
    assert _schedule(a) == _schedule(b)


def test_link_faults_independent_of_construction_order():
    """The per-link loss sequence keys on the link name alone: attaching
    hosts in a different order must leave every link's schedule untouched
    (the seed implementation salted seeds with a construction counter,
    so reordering rewired every link's fault stream)."""
    from repro.core.packet import AskPacket, PacketFlag
    from repro.net.simulator import Simulator
    from repro.net.topology import StarTopology

    class Sink:
        def __init__(self, name):
            self.name = name
            self.got = []

        def receive(self, packet):
            self.got.append(packet.seq)

    def deliveries(host_order):
        sim = Simulator()
        switch = Sink("switch")
        star = StarTopology(
            sim, switch, fault=FaultModel(loss_rate=0.4, seed=5)
        )
        hosts = {name: Sink(name) for name in host_order}
        for name in host_order:
            star.attach_host(hosts[name])
        for seq in range(100):
            star.send_to_switch(
                "h1",
                AskPacket(PacketFlag.DATA, 1, "h1", "switch", 0, seq),
                100,
            )
        sim.run()
        return switch.got

    assert deliveries(["h0", "h1", "h2"]) == deliveries(["h2", "h1", "h0"])
