"""Tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import (
    NS_PER_S,
    Simulator,
    SimulationError,
    microseconds,
    milliseconds,
    seconds,
    to_seconds,
)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(5, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    sim.schedule(42, lambda: None)
    sim.run()
    assert sim.now == 42


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(5, fired.append, "inner")

    sim.schedule(10, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 15


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(100, fired.append, "b")
    sim.run(until=50)
    assert fired == ["a"]
    assert sim.now == 50
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_events_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(50, fired.append, "edge")
    sim.run(until=50)
    assert fired == ["edge"]


def test_max_events_guard_raises():
    sim = Simulator()

    def loop():
        sim.schedule(1, loop)

    sim.schedule(1, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_pending_counts_live_events_only():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    event = sim.schedule(2, lambda: None)
    event.cancel()
    assert sim.pending == 1


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_max_events_ignores_trailing_cancelled_events():
    # Seed regression: run(max_events=N) checked its guard before discarding
    # cancelled heap entries, so a heap whose only remaining entries were
    # cancelled tripped the guard instead of draining.
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "live")
    sim.schedule(2, fired.append, "cancelled").cancel()
    sim.schedule(3, fired.append, "cancelled-too").cancel()
    sim.run(max_events=1)
    assert fired == ["live"]
    assert sim.pending == 0


def test_run_and_step_agree_on_events_processed():
    def drive_run():
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
        for event in events[1::2]:
            event.cancel()
        sim.run()
        return sim.events_processed

    def drive_step():
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
        for event in events[1::2]:
            event.cancel()
        while sim.step():
            pass
        return sim.events_processed

    assert drive_run() == drive_step() == 5


def test_max_events_counts_this_call_only():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    sim.schedule(1, lambda: None)
    sim.run(max_events=1)  # earlier events must not count against the guard
    assert sim.events_processed == 6


def test_late_cancel_after_fire_keeps_pending_accurate():
    sim = Simulator()
    event = sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.step()
    event.cancel()  # already fired; must not decrement the live count
    assert sim.pending == 1
    sim.run()
    assert sim.events_processed == 2


def test_heap_compacts_when_cancelled_events_dominate():
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(200)]
    for event in events[:150]:
        event.cancel()
    assert sim.compactions >= 1
    assert len(sim._heap) < 200  # cancelled entries were actually dropped
    assert sim.pending == 50
    sim.run()
    assert sim.events_processed == 50


def test_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    keep = []
    for i in range(300):
        event = sim.schedule(300 - i, fired.append, 300 - i)
        if i % 3 == 0:
            keep.append(event)
    keep_set = set(map(id, keep))
    for event in [entry[2] for entry in sim._heap]:
        if id(event) not in keep_set:
            event.cancel()
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(keep)


def test_time_unit_helpers():
    assert microseconds(1.5) == 1_500
    assert milliseconds(2) == 2_000_000
    assert seconds(1) == NS_PER_S
    assert to_seconds(NS_PER_S) == 1.0
    assert to_seconds(seconds(3.25)) == pytest.approx(3.25)


# ---------------------------------------------------------------------------
# Batch coalescing (call_at_batch / flush_batches) — the primitive the
# vectorized switch uses to gather back-to-back deliveries into one sweep.
# The contract is push-order exactness: the bucket absorbs items only
# across consecutive events sharing one callback, and flushes the moment
# any other event runs, the clock advances, or the queues drain — so
# everything the batch schedules lands in the heap exactly where a
# per-item consumer would have pushed it.
# ---------------------------------------------------------------------------


def test_call_at_batch_coalesces_items_from_one_event():
    sim = Simulator()
    batches = []

    def feed():
        for item in ("a", "b", "c"):
            sim.call_at_batch(sim.now, batches.append, item)

    sim.schedule(10, feed)
    sim.run()
    assert batches == [["a", "b", "c"]]


def test_call_at_batch_coalesces_across_consecutive_same_callback_events():
    """Back-to-back deliveries at one instant through the same callback —
    a same-link burst — ride one bucket."""
    sim = Simulator()
    batches = []

    def feed(item):
        sim.call_at_batch(sim.now, batches.append, item)

    sim.schedule(10, feed, "p1")
    sim.schedule(10, feed, "p2")
    sim.schedule(10, feed, "p3")
    sim.run()
    assert batches == [["p1", "p2", "p3"]]


def test_foreign_event_flushes_the_open_bucket_first():
    """An interleaved event with a different callback sees the batch's
    effects already delivered — exactly the order a per-packet consumer
    would have produced."""
    sim = Simulator()
    order = []
    deliver = lambda items: order.append(("batch", items))  # noqa: E731

    def feed(item):
        sim.call_at_batch(sim.now, deliver, item)

    sim.schedule(10, feed, "p1")
    sim.schedule(10, feed, "p2")
    sim.schedule(10, order.append, "foreign")
    sim.schedule(10, feed, "p3")
    sim.run()
    assert order == [("batch", ["p1", "p2"]), "foreign", ("batch", ["p3"])]


def test_clock_advance_flushes_before_time_moves():
    sim = Simulator()
    seen = []

    def feed(item):
        sim.call_at_batch(sim.now, lambda items: seen.append((sim.now, items)), item)

    sim.schedule(5, feed, "early")
    sim.schedule(9, feed, "late")
    sim.run()
    # Each bucket delivered while the clock still read its own instant.
    assert seen == [(5, ["early"]), (9, ["late"])]


def test_flush_batches_forces_the_pending_bucket_exactly_once():
    sim = Simulator()
    seen = []
    deliver = lambda items: seen.append(list(items))  # noqa: E731

    def feed_then_force():
        sim.call_at_batch(sim.now, deliver, "x")
        sim.call_at_batch(sim.now, deliver, "y")
        sim.flush_batches(deliver)
        assert seen == [["x", "y"]]

    sim.schedule(3, feed_then_force)
    sim.run()
    assert seen == [["x", "y"]]  # nothing fires twice at drain


def test_flush_batches_only_touches_the_given_callback():
    sim = Simulator()
    seen = []
    mine = lambda items: seen.append(("mine", list(items)))  # noqa: E731
    other = lambda items: seen.append(("other", list(items)))  # noqa: E731

    def feed():
        sim.call_at_batch(sim.now, mine, 1)
        sim.flush_batches(other)  # someone else's bucket: no effect
        assert seen == []

    sim.schedule(5, feed)
    sim.run()
    assert seen == [("mine", [1])]


def test_call_at_batch_rejects_any_other_instant():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="current instant"):
        sim.call_at_batch(5, lambda items: None, "x")  # the past
    with pytest.raises(SimulationError, match="current instant"):
        sim.call_at_batch(15, lambda items: None, "x")  # the future


def test_step_flushes_an_open_bucket_as_progress():
    sim = Simulator()
    batches = []

    def feed():
        sim.call_at_batch(sim.now, batches.append, "p")

    sim.schedule(2, feed)
    assert sim.step()  # runs feed, opens the bucket
    assert batches == []
    assert sim.pending == 1  # the open bucket counts as pending work
    assert sim.step()  # flushes the bucket
    assert batches == [["p"]]
    assert not sim.step()
