"""Unit tests for the multi-rack fabric wiring."""

import pytest

from repro.net.fault import FaultModel
from repro.net.multirack import MultiRackTopology
from repro.net.simulator import Simulator
from repro.net.topology import NetworkNode


class Sink(NetworkNode):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def _fabric(num_racks=2, hosts_per_rack=2, fault=None):
    sim = Simulator()
    fabric = MultiRackTopology(sim, bandwidth_gbps=None, latency_ns=10, fault=fault)
    switches, hosts = {}, {}
    for r in range(num_racks):
        rack = f"r{r}"
        switch = Sink(f"tor-{rack}")
        fabric.add_rack(rack, switch)
        switches[rack] = switch
        for h in range(hosts_per_rack):
            host = Sink(f"{rack}h{h}")
            fabric.attach_host(rack, host)
            hosts[host.name] = host
    return sim, fabric, switches, hosts


def test_host_uplink_reaches_local_tor():
    sim, fabric, switches, hosts = _fabric()
    fabric.send_to_switch("r0h0", "pkt", 64)
    sim.run()
    assert switches["r0"].received == ["pkt"]
    assert switches["r1"].received == []


def test_route_to_local_host_uses_downlink():
    sim, fabric, switches, hosts = _fabric()
    fabric.route_from_switch("r0", "r0h1", "pkt", 64)
    sim.run()
    assert hosts["r0h1"].received == ["pkt"]


def test_route_to_remote_host_crosses_core_to_remote_tor():
    sim, fabric, switches, hosts = _fabric()
    fabric.route_from_switch("r0", "r1h0", "pkt", 64)
    sim.run()
    # One core hop delivers to the remote TOR, which then routes onward.
    assert switches["r1"].received == ["pkt"]
    assert hosts["r1h0"].received == []  # the sink TOR doesn't forward


def test_route_to_remote_switch_by_name():
    sim, fabric, switches, hosts = _fabric()
    fabric.route_from_switch("r0", "tor-r1", "swap", 64)
    sim.run()
    assert switches["r1"].received == ["swap"]


def test_route_to_own_switch_delivers_synchronously():
    sim, fabric, switches, hosts = _fabric()
    fabric.route_from_switch("r0", "tor-r0", "swap", 64)
    assert switches["r0"].received == ["swap"]


def test_rack_and_host_lookups():
    sim, fabric, switches, hosts = _fabric()
    assert fabric.rack_of_host("r1h0") == "r1"
    assert fabric.rack_of_switch("tor-r0") == "r0"
    assert fabric.hosts_of("r0") == ["r0h0", "r0h1"]
    assert set(fabric.racks) == {"r0", "r1"}
    assert len(fabric.host_names) == 4


def test_rack_views_expose_local_hosts_only():
    sim = Simulator()
    fabric = MultiRackTopology(sim, bandwidth_gbps=None)
    view0 = fabric.add_rack("r0", Sink("tor-r0"))
    view1 = fabric.add_rack("r1", Sink("tor-r1"))
    fabric.attach_host("r0", Sink("a"))
    fabric.attach_host("r1", Sink("b"))
    assert view0.host_names == ["a"]
    assert view1.host_names == ["b"]


def test_duplicate_rack_and_host_rejected():
    sim, fabric, switches, hosts = _fabric()
    with pytest.raises(ValueError):
        fabric.add_rack("r0", Sink("tor-x"))
    with pytest.raises(ValueError):
        fabric.attach_host("r1", Sink("r0h0"))


def test_three_racks_get_full_mesh_core():
    sim, fabric, switches, hosts = _fabric(num_racks=3)
    for src in ("r0", "r1", "r2"):
        for dst in ("r0", "r1", "r2"):
            if src == dst:
                continue
            fabric.route_from_switch(src, f"tor-{dst}", f"{src}->{dst}", 10)
    sim.run()
    assert len(switches["r0"].received) == 2
    assert len(switches["r1"].received) == 2
    assert len(switches["r2"].received) == 2


def test_core_links_have_independent_fault_streams():
    fault = FaultModel(loss_rate=0.5, seed=2)
    sim, fabric, switches, hosts = _fabric(fault=fault)
    a = fabric._core_links[("r0", "r1")].link.fault
    b = fabric._core_links[("r1", "r0")].link.fault
    seq_a = [a.decide().drop for _ in range(64)]
    seq_b = [b.decide().drop for _ in range(64)]
    assert seq_a != seq_b
