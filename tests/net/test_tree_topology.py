"""Spine–leaf wiring and routing, plus the tagged topology error paths."""

import pytest

from repro.core.errors import TopologyError
from repro.net.multirack import MultiRackTopology
from repro.net.simulator import Simulator
from repro.net.topology import NetworkNode
from repro.net.trace import PacketTrace


class Sink(NetworkNode):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def _tree(trace=None):
    """2 pods x 2 racks x 1 host: s0=(r0, r1), s1=(r2, r3)."""
    sim = Simulator()
    fabric = MultiRackTopology(sim, bandwidth_gbps=None, latency_ns=10, trace=trace)
    spines, switches, hosts = {}, {}, {}
    for s in ("s0", "s1"):
        spine = Sink(f"spine-{s}")
        fabric.add_spine(spine)
        spines[s] = spine
    pods = {"s0": ("r0", "r1"), "s1": ("r2", "r3")}
    for pod, racks in pods.items():
        for rack in racks:
            switch = Sink(f"tor-{rack}")
            fabric.add_rack(rack, switch, spine=f"spine-{pod}")
            switches[rack] = switch
            host = Sink(f"{rack}h0")
            fabric.attach_host(rack, host)
            hosts[host.name] = host
    return sim, fabric, spines, switches, hosts


# ----------------------------------------------------------------------
# Routing through the tree
# ----------------------------------------------------------------------
def test_same_rack_traffic_never_visits_the_spine():
    trace = PacketTrace()
    sim, fabric, spines, switches, hosts = _tree(trace)
    host2 = Sink("r0h1")
    fabric.attach_host("r0", host2)
    fabric.route_from_switch("r0", "r0h1", "pkt", 64)
    sim.run()
    assert host2.received == ["pkt"]
    assert all(not entry.site.startswith(("up:", "down:")) for entry in trace.records)


def test_interrack_same_pod_goes_up_then_down():
    trace = PacketTrace()
    sim, fabric, spines, switches, hosts = _tree(trace)
    fabric.route_from_switch("r0", "r1h0", "pkt", 64)
    sim.run()
    # First hop lands on the pod spine, which (being a plain sink here)
    # holds the packet; a real switch would route it onward.
    assert spines["s0"].received == ["pkt"]
    assert [e.site for e in trace.records if e.kind == "tx"] == ["up:r0->spine-s0"]
    # The spine leg: down to the destination leaf.
    fabric.route_from_spine("spine-s0", "r1h0", "pkt", 64)
    sim.run()
    assert switches["r1"].received == ["pkt"]
    assert [e.site for e in trace.records if e.kind == "tx"][-1] == "down:spine-s0->r1"


def test_cross_pod_traffic_crosses_the_spine_mesh():
    trace = PacketTrace()
    sim, fabric, spines, switches, hosts = _tree(trace)
    fabric.route_from_spine("spine-s0", "r2h0", "pkt", 64)
    sim.run()
    assert spines["s1"].received == ["pkt"]
    assert [e.site for e in trace.records if e.kind == "tx"] == ["core:spine-s0->spine-s1"]


def test_spine_addressed_control_traffic_routes_up():
    sim, fabric, spines, switches, hosts = _tree()
    fabric.route_from_switch("r0", "spine-s0", "swap", 64)
    sim.run()
    assert spines["s0"].received == ["swap"]


def test_spine_self_addressed_delivers_synchronously():
    sim, fabric, spines, switches, hosts = _tree()
    fabric.route_from_spine("spine-s0", "spine-s0", "swap", 64)
    assert spines["s0"].received == ["swap"]


def test_spine_views_expose_no_hosts():
    sim = Simulator()
    fabric = MultiRackTopology(sim, bandwidth_gbps=None)
    view = fabric.add_spine(Sink("spine-s0"))
    fabric.add_rack("r0", Sink("tor-r0"), spine="spine-s0")
    fabric.attach_host("r0", Sink("a"))
    assert view.host_names == []
    assert fabric.spine_of_rack("r0") == "spine-s0"
    assert fabric.spine_names == ["spine-s0"]


# ----------------------------------------------------------------------
# Tagged error paths: every rejection is a TopologyError naming the
# offending node, never a bare KeyError.
# ----------------------------------------------------------------------
def test_unknown_host_lookup_is_tagged():
    sim, fabric, spines, switches, hosts = _tree()
    with pytest.raises(TopologyError, match="ghost") as exc:
        fabric.rack_of_host("ghost")
    assert exc.value.name == "ghost"


def test_unknown_route_destination_is_tagged():
    sim, fabric, spines, switches, hosts = _tree()
    with pytest.raises(TopologyError, match="nowhere") as exc:
        fabric.route_from_switch("r0", "nowhere", "pkt", 64)
    assert exc.value.name == "nowhere"
    with pytest.raises(TopologyError, match="nowhere") as exc:
        fabric.route_from_spine("spine-s0", "nowhere", "pkt", 64)
    assert exc.value.name == "nowhere"


def test_duplicate_spine_and_rack_and_host_are_tagged():
    sim, fabric, spines, switches, hosts = _tree()
    with pytest.raises(TopologyError, match="spine-s0") as exc:
        fabric.add_spine(Sink("spine-s0"))
    assert exc.value.name == "spine-s0"
    with pytest.raises(TopologyError, match="r0") as exc:
        fabric.add_rack("r0", Sink("tor-x"), spine="spine-s0")
    assert exc.value.name == "r0"
    with pytest.raises(TopologyError, match="tor-r1") as exc:
        fabric.add_rack("r9", Sink("tor-r1"), spine="spine-s0")
    assert exc.value.name == "tor-r1"
    with pytest.raises(TopologyError, match="r0h0") as exc:
        fabric.attach_host("r1", Sink("r0h0"))
    assert exc.value.name == "r0h0"
    with pytest.raises(TopologyError, match="r9") as exc:
        fabric.attach_host("r9", Sink("fresh"))
    assert exc.value.name == "r9"


def test_spine_name_cannot_reuse_a_leaf_name():
    sim, fabric, spines, switches, hosts = _tree()
    with pytest.raises(TopologyError, match="tor-r0") as exc:
        fabric.add_spine(Sink("tor-r0"))
    assert exc.value.name == "tor-r0"


def test_flat_and_tree_wiring_cannot_mix():
    sim = Simulator()
    fabric = MultiRackTopology(sim, bandwidth_gbps=None)
    fabric.add_spine(Sink("spine-s0"))
    # A spine–leaf topology refuses a rack without a spine...
    with pytest.raises(TopologyError, match="spine") as exc:
        fabric.add_rack("r0", Sink("tor-r0"))
    assert exc.value.name == "r0"
    # ... and an unknown spine is named in the error.
    with pytest.raises(TopologyError, match="spine-missing") as exc:
        fabric.add_rack("r0", Sink("tor-r0"), spine="spine-missing")
    assert exc.value.name == "spine-missing"
    # Conversely a flat mesh refuses to grow a spine after the fact.
    flat = MultiRackTopology(Simulator(), bandwidth_gbps=None)
    flat.add_rack("r0", Sink("tor-r0"))
    with pytest.raises(TopologyError, match="flat") as exc:
        flat.add_spine(Sink("spine-s0"))
    assert exc.value.name == "spine-s0"


def test_topology_error_is_a_value_error():
    """Callers that predate the tagged hierarchy catch ValueError."""
    sim, fabric, spines, switches, hosts = _tree()
    with pytest.raises(ValueError):
        fabric.rack_of_host("ghost")
