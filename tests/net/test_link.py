"""Tests for links: serialization, FIFO ordering, fault application."""

from repro.net.fault import FaultModel
from repro.net.link import Link, gbps_to_bits_per_ns
from repro.net.simulator import Simulator


def _collect(sim, link, sends):
    """Send (packet, size) pairs and return [(arrival_time, packet)]."""
    arrivals = []
    for packet, size in sends:
        link.send(packet, size, lambda p: arrivals.append((sim.now, p)))
    sim.run()
    return arrivals


def test_serialization_time_at_100gbps():
    # 100 Gbps == 100 bits/ns, so 1250 bytes == 10000 bits == 100 ns.
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0)
    arrivals = _collect(sim, link, [("p", 1250)])
    assert arrivals == [(100, "p")]


def test_latency_added_after_serialization():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=500)
    arrivals = _collect(sim, link, [("p", 1250)])
    assert arrivals == [(600, "p")]


def test_fifo_serialization_queues_back_to_back_sends():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0)
    arrivals = _collect(sim, link, [("a", 1250), ("b", 1250)])
    assert arrivals == [(100, "a"), (200, "b")]


def test_infinite_bandwidth_has_no_serialization_delay():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=None, latency_ns=7)
    arrivals = _collect(sim, link, [("p", 10_000_000)])
    assert arrivals == [(7, "p")]


def test_dropped_packets_never_arrive_but_consume_wire_time():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0, fault=FaultModel(loss_rate=1.0))
    arrivals = _collect(sim, link, [("a", 1250), ("b", 1250)])
    assert arrivals == []
    assert link.packets_dropped == 2
    # Serialization still happened: the transmitter was busy until 200 ns.
    assert link.utilization_window_end == 200


def test_duplicate_delivers_twice():
    sim = Simulator()
    link = Link(
        sim,
        bandwidth_gbps=100.0,
        latency_ns=0,
        fault=FaultModel(duplicate_rate=1.0, max_extra_delay_ns=10, seed=2),
    )
    arrivals = _collect(sim, link, [("p", 1250)])
    assert [p for _, p in arrivals] == ["p", "p"]
    assert link.packets_duplicated == 1


def test_reordering_lets_later_packet_overtake():
    sim = Simulator()
    # Reorder every packet with a large extra delay; with a fixed seed the
    # two packets get different extra delays, so order can flip.
    link = Link(
        sim,
        bandwidth_gbps=None,
        latency_ns=10,
        fault=FaultModel(reorder_rate=1.0, max_extra_delay_ns=10_000, seed=4),
    )
    arrivals = _collect(sim, link, [("a", 100), ("b", 100)])
    assert sorted(p for _, p in arrivals) == ["a", "b"]
    assert len(arrivals) == 2


def test_counters():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0)
    _collect(sim, link, [("a", 100), ("b", 200)])
    assert link.packets_sent == 2
    assert link.bytes_sent == 300


def test_minimum_one_ns_serialization():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0)
    assert link.serialization_ns(1) >= 1


def test_gbps_conversion_identity():
    assert gbps_to_bits_per_ns(100.0) == 100.0
