"""Named-stream determinism for gray slowdown jitter.

Every slowdown jitter stream is seeded from a stable name — the chaos
seed plus the link (sim backend) or the datagram direction (asyncio
backend) — never from construction order or from how many other links
happen to be slowed.  These tests pin that contract on both backends:
same name, same draws; different names, independent draws; probing a
closed window consumes nothing.
"""

import pytest

from repro.net.fault import LinkSlowdown


def _draws(slowdown, n=20, latency_ns=1_000):
    slowdown.active = True
    return [slowdown.extra_ns(latency_ns) for _ in range(n)]


def test_same_link_name_same_jitter_sequence():
    a = LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000)
    b = LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000)
    assert _draws(a) == _draws(b)


def test_link_name_and_seed_both_split_the_stream():
    base = _draws(LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000))
    other_link = _draws(LinkSlowdown("42:chaos-slow", "up:h1", jitter_ns=5_000))
    other_seed = _draws(LinkSlowdown("7:chaos-slow", "up:h0", jitter_ns=5_000))
    assert base != other_link
    assert base != other_seed


def test_interleaved_draws_cannot_perturb_each_other():
    # Two links slowed at once: alternating their packets must yield the
    # exact sequences each link produces when slowed alone.
    solo_a = _draws(LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000))
    solo_b = _draws(LinkSlowdown("42:chaos-slow", "dn:h1", jitter_ns=5_000))
    a = LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000)
    b = LinkSlowdown("42:chaos-slow", "dn:h1", jitter_ns=5_000)
    a.active = b.active = True
    mixed_a, mixed_b = [], []
    for _ in range(20):
        mixed_a.append(a.extra_ns(1_000))
        mixed_b.append(b.extra_ns(1_000))
    assert mixed_a == solo_a
    assert mixed_b == solo_b


def test_closed_window_draws_nothing():
    probed = LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000)
    for _ in range(50):
        assert probed.extra_ns(1_000) == 0
    assert probed.packets_slowed == 0
    fresh = LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000)
    # Closed-window probes consumed no jitter draws: both streams align.
    assert _draws(probed) == _draws(fresh)
    assert probed.packets_slowed == 20


def test_reopened_window_continues_the_stream():
    straight = _draws(LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000))
    paused = LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=5_000)
    first = _draws(paused, n=8)
    paused.active = False
    assert paused.extra_ns(1_000) == 0  # window closed mid-run
    second = _draws(paused, n=12)
    assert first + second == straight


def test_without_jitter_delay_is_pure_multiplier():
    s = LinkSlowdown("42:chaos-slow", "up:h0", multiplier=4.0)
    s.active = True
    assert s.extra_ns(1_000) == 3_000  # latency * (multiplier - 1)


def test_rejects_bad_parameters():
    with pytest.raises(ValueError, match="multiplier"):
        LinkSlowdown("42:chaos-slow", "up:h0", multiplier=0.5)
    with pytest.raises(ValueError, match="jitter"):
        LinkSlowdown("42:chaos-slow", "up:h0", jitter_ns=-1)


# ---------------------------------------------------------------------------
# Asyncio backend: per-direction streams named {seed}:chaos-slow:{src}->{dst}
# ---------------------------------------------------------------------------
def _asyncio_draws(order):
    from repro.net.fault import FaultModel
    from repro.runtime.asyncio_fabric import AsyncioFabric

    fabric = AsyncioFabric(fault=FaultModel(seed=42))
    try:
        fabric.slow_jitter_ns = 5_000
        fabric.slow("h0")
        fabric.slow("h1")
        return {
            key: [fabric._slow_extra(*key) for _ in range(10)] for key in order
        }
    finally:
        fabric.close()


def test_asyncio_direction_streams_are_query_order_independent():
    keys = [("h0", "switch"), ("h1", "switch"), ("switch", "h0")]
    forward = _asyncio_draws(keys)
    backward = _asyncio_draws(list(reversed(keys)))
    # Same seed, same direction -> same draws, no matter which direction
    # was slowed or queried first.
    assert forward == backward
    # And the three directions are genuinely independent streams.
    assert len({tuple(v) for v in forward.values()}) == 3


def test_asyncio_direction_streams_depend_on_the_chaos_seed():
    from repro.net.fault import FaultModel
    from repro.runtime.asyncio_fabric import AsyncioFabric

    def one(seed):
        fabric = AsyncioFabric(fault=FaultModel(seed=seed))
        try:
            fabric.slow_jitter_ns = 5_000
            fabric.slow("h0")
            return [fabric._slow_extra("h0", "switch") for _ in range(10)]
        finally:
            fabric.close()

    assert one(42) == one(42)
    assert one(42) != one(7)
