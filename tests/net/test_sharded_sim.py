"""Contract tests for the sharded-PDES building blocks.

These pin the *mechanism* contracts the coordinator depends on —
exclusive drain horizons, past-time injection rejection, shard-order
tickets, plan validation, lookahead computation — independently of any
deployment.  The serial==sharded end-to-end identity lives in
``tests/runtime/test_sharded_identity.py``.
"""

import gc

import pytest

from repro.core.errors import TopologyError
from repro.net.multirack import MultiRackTopology, ShardPlan, plan_rack_shards
from repro.net.sharded import (
    InProcessShard,
    ShardedSimulator,
    cross_shard_lookahead,
    cross_shard_routes,
)
from repro.net.simulator import (
    ShardContextCall,
    SimulationError,
    Simulator,
    paused_gc,
)
from repro.net.topology import NetworkNode


class Sink(NetworkNode):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


# ----------------------------------------------------------------------
# drain_until: the exclusive safe-horizon bound
# ----------------------------------------------------------------------
def test_drain_until_excludes_event_exactly_at_horizon():
    sim = Simulator()
    fired = []
    sim.call_at(999, fired.append, "below")
    sim.call_at(1000, fired.append, "at-horizon")
    sim.drain_until(1000)
    # The event exactly at the horizon belongs to the NEXT window: a
    # cross-shard message may still arrive at t == horizon.
    assert fired == ["below"]
    assert sim.now == 999
    sim.drain_until(2000)
    assert fired == ["below", "at-horizon"]


def test_drain_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.drain_until(500)
    assert sim.now == 499
    with pytest.raises(SimulationError):
        sim.drain_until(499)  # horizon must be strictly ahead


def test_drain_until_flushes_open_batch_at_window_boundary():
    # A shard must not carry a buffered batch delivery across a window
    # barrier: drain_until has to flush the open bucket before returning,
    # exactly as run() does when its queues drain.
    sim = Simulator()
    delivered = []

    def batch_two():
        sim.call_at_batch(sim.now, delivered.append, "a")
        sim.call_at_batch(sim.now, delivered.append, "b")

    sim.call_at(999, batch_two)
    sim.drain_until(1000)
    assert delivered == [["a", "b"]]
    assert sim.now == 999
    assert sim.pending == 0


# ----------------------------------------------------------------------
# inject: cross-shard message application
# ----------------------------------------------------------------------
def test_inject_rejects_past_and_present_times():
    sim = Simulator()
    sim.call_at(100, lambda: None)
    sim.run()
    assert sim.now == 100
    with pytest.raises(SimulationError):
        sim.inject(100, 0, lambda: None)
    with pytest.raises(SimulationError):
        sim.inject(50, 0, lambda: None)


def test_inject_preserves_sender_ticket_order():
    sim = Simulator()
    fired = []
    # Same arrival instant, tickets in reverse submission order: the
    # heap must replay ticket order, not injection order.
    sim.inject(10, 2, fired.append, "second")
    sim.inject(10, 1, fired.append, "first")
    sim.run()
    assert fired == ["first", "second"]


def test_injected_message_at_exact_horizon_runs_next_window():
    # The coordinator invariant: after drain_until(H) every shard sits at
    # now == H-1, so a message with arrival == H is still injectable and
    # runs in the following window.
    sim = Simulator()
    fired = []
    sim.drain_until(1000)
    sim.inject(1000, 0, fired.append, "boundary")
    sim.drain_until(1001)
    assert fired == ["boundary"]


def test_next_event_time_sees_heap_and_injected_events():
    sim = Simulator()
    assert sim.next_event_time() is None
    sim.call_at(500, lambda: None)
    assert sim.next_event_time() == 500
    sim.inject(300, 0, lambda: None)
    assert sim.next_event_time() == 300


# ----------------------------------------------------------------------
# Shard-order tickets
# ----------------------------------------------------------------------
def test_shard_tickets_order_by_time_then_rank_then_seq():
    def ticket(rank):
        sim = Simulator()
        sim.enable_shard_order(rank)
        return sim.claim_shard_ticket()

    t_rank0, t_rank1 = ticket(0), ticket(1)
    assert t_rank0 < t_rank1  # same time, same seq: rank breaks the tie

    sim = Simulator()
    sim.enable_shard_order(3)
    first = sim.claim_shard_ticket()
    second = sim.claim_shard_ticket()
    assert first < second  # same time and rank: sequence breaks the tie

    late = Simulator()
    late.enable_shard_order(0)
    late.call_at(1000, lambda: None)
    late.run()
    assert late.claim_shard_ticket() > t_rank1  # time dominates rank


def test_enable_shard_order_rejects_oversized_rank():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.enable_shard_order(1 << 16)


def test_serial_shard_order_context_follows_event_ownership():
    # The canonical serial schedule: a callback scheduled under context R
    # claims context-R tickets for everything *it* schedules, however
    # deep the chain — mirroring which shard replica would own the event.
    sim = Simulator()
    sim.enable_serial_shard_order()
    claimed = []

    def leaf():
        claimed.append(sim.claim_shard_ticket())

    def from_rank(rank):
        sim.set_shard_context(rank)
        sim.call_at(10, leaf)

    from_rank(2)
    from_rank(1)
    sim.run()

    def rank_of(ticket):
        return (ticket >> 48) & 0xFFFF

    # Both leaves fired at time 10; each inherited its scheduler's rank.
    assert [rank_of(t) for t in sorted(claimed)] == [1, 2]


def test_serial_shard_context_rejects_oversized_rank():
    sim = Simulator()
    sim.enable_serial_shard_order()
    with pytest.raises(SimulationError):
        sim.set_shard_context(1 << 16)


def test_shard_context_call_restores_its_rank():
    sim = Simulator()
    sim.enable_serial_shard_order()
    seen = []
    call = ShardContextCall(sim, 7, lambda: seen.append(sim.claim_shard_ticket()))
    sim.set_shard_context(3)
    call()
    assert (seen[0] >> 48) & 0xFFFF == 7


def test_paused_gc_restores_collector_state():
    assert gc.isenabled()
    with paused_gc():
        assert not gc.isenabled()
        with paused_gc():  # nested: inner exit must not re-enable early
            assert not gc.isenabled()
        assert not gc.isenabled()
    assert gc.isenabled()

    gc.disable()
    try:
        with paused_gc():
            assert not gc.isenabled()
        assert not gc.isenabled()  # disabled-on-entry stays disabled
    finally:
        gc.enable()


# ----------------------------------------------------------------------
# ShardPlan validation
# ----------------------------------------------------------------------
def test_shard_plan_rejects_duplicate_shard_names():
    with pytest.raises(TopologyError) as excinfo:
        ShardPlan([("s0", ["r0"], []), ("s0", ["r1"], [])])
    assert excinfo.value.name == "s0"


def test_shard_plan_rejects_doubly_assigned_rack():
    with pytest.raises(TopologyError) as excinfo:
        ShardPlan([("s0", ["r0"], []), ("s1", ["r0"], [])])
    assert excinfo.value.name == "r0"


def test_shard_plan_validate_requires_exact_rack_coverage():
    sim = Simulator()
    topo = MultiRackTopology(sim, bandwidth_gbps=None)
    topo.add_rack("r0", Sink("tor-r0"))
    topo.add_rack("r1", Sink("tor-r1"))
    ShardPlan([("s0", ["r0"], []), ("s1", ["r1"], [])]).validate(topo)
    with pytest.raises(TopologyError):
        ShardPlan([("s0", ["r0"], [])]).validate(topo)  # r1 uncovered
    with pytest.raises(TopologyError):
        ShardPlan(
            [("s0", ["r0"], []), ("s1", ["r1", "r2"], [])]
        ).validate(topo)  # r2 unknown


def test_plan_rack_shards_balanced_contiguous_cut():
    plan = plan_rack_shards([f"r{i}" for i in range(5)], 2)
    assert plan.names == ["shard0", "shard1"]
    assert [plan.rank_of_rack(f"r{i}") for i in range(5)] == [0, 0, 0, 1, 1]
    with pytest.raises(TopologyError):
        plan_rack_shards(["r0"], 2)  # more shards than racks


def test_plan_rack_shards_spreads_spines_round_robin():
    racks = [f"r{i}" for i in range(4)]
    spine_of = {rack: f"spine-p{i}" for i, rack in enumerate(racks)}
    follow = plan_rack_shards(racks, 2, spine_of=spine_of)
    assert [follow.rank_of_spine(f"spine-p{i}") for i in range(4)] == [0, 0, 1, 1]
    spread = plan_rack_shards(racks, 2, spine_of=spine_of, spread_spines=True)
    assert [spread.rank_of_spine(f"spine-p{i}") for i in range(4)] == [0, 1, 0, 1]


# ----------------------------------------------------------------------
# Lookahead and routes
# ----------------------------------------------------------------------
def _two_rack_mesh(core_latency_ns):
    topo = MultiRackTopology(
        Simulator(), bandwidth_gbps=None, core_latency_ns=core_latency_ns
    )
    topo.add_rack("r0", Sink("tor-r0"))
    topo.add_rack("r1", Sink("tor-r1"))
    return topo


def test_cross_shard_lookahead_is_min_cross_link_latency():
    plan = ShardPlan([("s0", ["r0"], []), ("s1", ["r1"], [])])
    assert cross_shard_lookahead(_two_rack_mesh(7_500), plan) == 7_500


def test_zero_latency_cross_shard_link_is_rejected():
    plan = ShardPlan([("s0", ["r0"], []), ("s1", ["r1"], [])])
    with pytest.raises(TopologyError) as excinfo:
        cross_shard_lookahead(_two_rack_mesh(0), plan)
    assert "lookahead" in str(excinfo.value)


def test_intra_shard_links_yield_no_lookahead_constraint():
    # Both racks in one shard: no cross link, so no window bound at all.
    plan = ShardPlan([("s0", ["r0", "r1"], [])])
    assert cross_shard_lookahead(_two_rack_mesh(2_000), plan) is None
    assert cross_shard_routes(_two_rack_mesh(2_000), plan) == {}


def test_cross_shard_routes_map_links_to_destination_rank():
    plan = ShardPlan([("s0", ["r0"], []), ("s1", ["r1"], [])])
    routes = cross_shard_routes(_two_rack_mesh(2_000), plan)
    assert routes == {"core:r0->r1": 1, "core:r1->r0": 0}


# ----------------------------------------------------------------------
# Coordinator loop over bare simulators
# ----------------------------------------------------------------------
class _BareShard:
    """Minimal ShardContext: one simulator, no deployment."""

    def __init__(self, sim):
        self.sim = sim
        self.inbound = {}
        self.outbox = []

    def finish(self):
        return self.sim.events_processed


def test_coordinator_drains_independent_shards_to_quiescence():
    def factory(rank):
        sim = Simulator()
        sim.enable_shard_order(rank)
        for t in (100, 250, 400 + rank):
            sim.call_at(t, lambda: None)
        return _BareShard(sim)

    handles = [InProcessShard(factory, rank) for rank in range(2)]
    coordinator = ShardedSimulator(handles, routes={}, lookahead_ns=50)
    try:
        payloads = coordinator.run()
    finally:
        coordinator.close()
    assert payloads == [3, 3]
    assert coordinator.windows >= 1
    assert coordinator.messages == 0


def test_coordinator_requires_lookahead_when_routes_exist():
    handles = [
        InProcessShard(lambda rank: _BareShard(Simulator()), rank)
        for rank in range(2)
    ]
    with pytest.raises(SimulationError):
        ShardedSimulator(handles, routes={"core:r0->r1": 1}, lookahead_ns=None)
    for handle in handles:
        handle.close()
