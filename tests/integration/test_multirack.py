"""Tests for the §7 hierarchical (multi-rack) deployment."""

import pytest

from repro.core.config import AskConfig
from repro.core.controlplane import ControlPlane
from repro.core.errors import RegionExhaustedError, TaskStateError
from repro.core.multirack_service import MultiRackService
from repro.net.fault import FaultModel
from repro.workloads.stream import exact_aggregate, merge_results


def _service(fault=None, **cfg_overrides):
    cfg = AskConfig.small(**cfg_overrides)
    return MultiRackService(
        cfg,
        racks={"r0": ["a", "b"], "r1": ["c", "d"]},
        fault=fault,
    )


def _check(service, streams, receiver):
    result = service.aggregate(streams, receiver=receiver, check=True)
    expected = merge_results(
        [exact_aggregate(s, 32) for s in streams.values()], 32
    )
    assert result.values == expected
    return result


def test_cross_rack_aggregation_is_exact():
    service = _service()
    streams = {
        "a": [(b"cat", 1)] * 50,
        "c": [(b"cat", 2)] * 50,
    }
    result = _check(service, streams, receiver="b")
    assert result[b"cat"] == 150


def test_each_rack_aggregates_locally():
    service = _service()
    streams = {
        "a": [(("k%02d" % (i % 10)).encode(), 1) for i in range(200)],
        "c": [(("k%02d" % (i % 10)).encode(), 1) for i in range(200)],
    }
    _check(service, streams, receiver="b")
    # Both sender-side TORs absorbed packets from their own rack.
    assert service.switches["r0"].stats.packets_acked > 0
    assert service.switches["r1"].stats.packets_acked > 0


def test_receiver_side_tor_is_bypassed():
    """§7: cross-rack traffic bypasses the receiver TOR — it runs no
    pipeline pass and keeps no channel state."""
    service = _service()
    _check(service, {"a": [(b"x", 1)] * 100}, receiver="c")
    receiver_tor = service.switches["r1"]
    assert receiver_tor.pipeline.passes == 0
    assert receiver_tor.controller.num_channels == 0
    sender_tor = service.switches["r0"]
    assert sender_tor.pipeline.passes > 0


def test_channel_state_bounded_to_local_hosts():
    """The §7 motivation: per-switch reliability state covers only the
    rack's own data channels, never remote senders'."""
    service = _service()
    streams = {"a": [(b"x", 1)] * 60, "c": [(b"y", 1)] * 60}
    _check(service, streams, receiver="b")
    r0_channels = service.switches["r0"].controller.num_channels
    r1_channels = service.switches["r1"].controller.num_channels
    assert r0_channels == 1  # host a's channel only
    assert r1_channels == 1  # host c's channel only


def test_exactly_once_across_racks_under_faults():
    fault = FaultModel(loss_rate=0.08, duplicate_rate=0.05, reorder_rate=0.1, seed=5)
    service = _service(fault=fault)
    streams = {
        "a": [(("k%02d" % (i % 25)).encode(), 1) for i in range(300)],
        "c": [(("k%02d" % (i % 25)).encode(), 3) for i in range(300)],
        "d": [(("k%02d" % (i % 25)).encode(), 5) for i in range(300)],
    }
    result = _check(service, streams, receiver="b")
    assert result.stats.retransmissions > 0


def test_swaps_broadcast_to_every_sender_tor():
    service = _service(swap_threshold_packets=4)
    streams = {
        "a": [(("k%02d" % (i % 30)).encode(), 1) for i in range(400)],
        "c": [(("k%02d" % (i % 30)).encode(), 1) for i in range(400)],
    }
    result = _check(service, streams, receiver="b")
    assert result.stats.swaps >= 1
    assert service.switches["r0"].shadow.swaps_applied >= 1
    assert service.switches["r1"].shadow.swaps_applied >= 1


def test_swaps_survive_lossy_core():
    fault = FaultModel(loss_rate=0.1, seed=9)
    service = _service(fault=fault, swap_threshold_packets=4)
    streams = {
        "a": [(("k%02d" % (i % 30)).encode(), 1) for i in range(300)],
        "c": [(("k%02d" % (i % 30)).encode(), 1) for i in range(300)],
    }
    result = _check(service, streams, receiver="d")
    assert result.stats.swaps >= 1


def test_rack_local_task_works_too():
    service = _service()
    result = _check(service, {"a": [(b"k", 2)] * 40}, receiver="b")
    # Only the local TOR is involved.
    assert service.switches["r1"].pipeline.passes == 0


def test_core_traffic_reduced_by_rack_local_aggregation():
    """The hierarchy's point: the core carries only residuals + control."""
    cfg = AskConfig.small(aggregators_per_aa=2048, trace=True)
    service = MultiRackService(cfg, racks={"r0": ["a", "b"], "r1": ["c", "d"]})
    stream = [(("k%02d" % (i % 20)).encode(), 1) for i in range(1000)]
    result = service.aggregate({"c": stream}, receiver="a", check=True)
    data_sent = result.stats.data_packets_sent
    core_tx = service.trace.count(site="core:r1->r0")
    # Nearly everything was absorbed at tor-r1; only stragglers crossed.
    assert core_tx < data_sent / 2


def test_unknown_hosts_rejected():
    service = _service()
    with pytest.raises(KeyError):
        service.submit({"zz": [(b"a", 1)]}, receiver="b")
    with pytest.raises(KeyError):
        service.submit({"a": [(b"a", 1)]}, receiver="zz")


# ---------------------------------------------------------------------------
# ControlPlane unit behaviour
# ---------------------------------------------------------------------------
def test_controlplane_all_or_nothing_allocation():
    service = _service()
    control = service.control
    names = sorted(control.switch_names)
    big = service.config.copy_size
    # Fill one switch completely so a two-switch allocation must fail ...
    control.controller(names[0]).allocate_region(99, size=big)
    with pytest.raises(RegionExhaustedError):
        control.allocate(1, names, size=big)
    # ... and must have rolled back on the other switch.
    other = control.controller(names[1])
    region = other.allocate_region(2, size=big)
    assert region.size == big


def test_controlplane_rejects_empty_switch_set():
    control = ControlPlane()
    with pytest.raises(ValueError):
        control.allocate(1, [])


def test_controlplane_unknown_task_operations():
    control = ControlPlane()
    with pytest.raises(TaskStateError):
        control.fetch_and_reset(5, 0)
    control.deallocate(5)  # deallocating nothing is a no-op


def test_streaming_session_spans_racks_and_swaps_broadcast():
    """A multi-rack streaming session: senders in both racks stay live
    across several feeds, and every shadow-copy swap notification reaches
    *all* sender-side TORs (§3.4 + §7) before the receiver fetches."""
    service = _service(swap_threshold_packets=4)
    # A 1-aggregator region forces most tuples through to the receiver,
    # so packets actually arrive there and trip the swap threshold.
    session = service.open_stream(["a", "c"], receiver="d", region_size=1)
    for round_ in range(6):
        session.feed("a", [(b"k%02d" % i, 1) for i in range(20)])
        session.feed("c", [(b"k%02d" % i, 2) for i in range(20)])
        service.run()
    session.close()
    service.run_to_completion()

    result = session.result
    assert result is not None
    assert result.values == {b"k%02d" % i: 18 for i in range(20)}
    # The swap loop actually ran, and both TORs honoured the broadcast —
    # each observed the same number of epoch flips.
    assert result.stats.swaps > 0
    assert service.switches["r0"].stats.swaps == result.stats.swaps
    assert service.switches["r1"].stats.swaps == result.stats.swaps


def test_streaming_single_rack_senders_leave_other_tor_untouched():
    """A session whose senders all live in r0 must not allocate or swap
    on r1's TOR even though the receiver sits behind it."""
    service = _service(swap_threshold_packets=4)
    session = service.open_stream(["a", "b"], receiver="c", region_size=1)
    session.feed("a", [(b"k%02d" % i, 1) for i in range(30)])
    session.feed("b", [(b"k%02d" % i, 1) for i in range(30)])
    session.close()
    service.run_to_completion()

    assert session.result is not None
    assert session.result.values == {b"k%02d" % i: 2 for i in range(30)}
    assert service.switches["r0"].stats.swaps > 0
    assert service.switches["r1"].stats.swaps == 0
    assert service.switches["r1"].pipeline.passes == 0
