"""Integration tests: ECN marking and AIMD behaviour end to end (§7)."""

import pytest

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.link import Link
from repro.net.simulator import Simulator


# ---------------------------------------------------------------------------
# Link-level ECN marking
# ---------------------------------------------------------------------------
class _MarkablePacket:
    def __init__(self):
        self.ecn = False

    def with_ecn(self):
        marked = _MarkablePacket()
        marked.ecn = True
        return marked


def test_link_marks_when_backlog_exceeds_threshold():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=1.0, latency_ns=0, ecn_threshold_bytes=1000)
    delivered = []
    for _ in range(10):
        link.send(_MarkablePacket(), 500, delivered.append)
    sim.run()
    assert any(p.ecn for p in delivered)
    assert not delivered[0].ecn  # the first packet saw an empty queue
    assert link.packets_marked > 0
    assert link.max_backlog_bytes > 1000


def test_link_never_marks_below_threshold():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=100.0, latency_ns=0, ecn_threshold_bytes=10_000)
    delivered = []
    link.send(_MarkablePacket(), 500, delivered.append)
    sim.run()
    assert not delivered[0].ecn


def test_link_without_threshold_never_marks():
    sim = Simulator()
    link = Link(sim, bandwidth_gbps=1.0, latency_ns=0)
    delivered = []
    for _ in range(50):
        link.send(_MarkablePacket(), 500, delivered.append)
    sim.run()
    assert not any(p.ecn for p in delivered)


# ---------------------------------------------------------------------------
# End-to-end AIMD behaviour
# ---------------------------------------------------------------------------
def _congested_service(congestion_control):
    # A slow (1 Gbps) fabric with a tight ECN threshold: a full reliability
    # window of packets vastly overruns the queue without CC.
    cfg = AskConfig.small(
        window_size=64,
        congestion_control=congestion_control,
        ecn_threshold_bytes=2_000,
        cwnd_initial=4.0,
        link_bandwidth_gbps=1.0,
        link_latency_ns=500,
        retransmit_timeout_us=1000.0,
    )
    return AskService(cfg, hosts=2), cfg


def _run_stream(service):
    stream = [(("k%03d" % (i % 100)).encode(), 1) for i in range(3000)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    return result


def test_congestion_control_bounds_queue_depth():
    without, _ = _congested_service(congestion_control=False)
    _run_stream(without)
    with_cc, _ = _congested_service(congestion_control=True)
    _run_stream(with_cc)
    backlog_without = without.topology.uplink("h0").link.max_backlog_bytes
    backlog_with = with_cc.topology.uplink("h0").link.max_backlog_bytes
    assert backlog_with < backlog_without / 3


def test_congestion_window_reacts_to_marks():
    service, cfg = _congested_service(congestion_control=True)
    _run_stream(service)
    channel = service.daemon("h0").channels[0]
    assert channel.congestion is not None
    assert channel.congestion.decreases > 0
    assert channel.congestion.increases > 0
    assert channel.congestion.cwnd <= cfg.window_size


def test_result_stays_exact_under_congestion_control():
    service, _ = _congested_service(congestion_control=True)
    result = _run_stream(service)
    assert result.stats.input_tuples == 3000


def test_acks_echo_the_ecn_mark():
    service, _ = _congested_service(congestion_control=True)
    _run_stream(service)
    # The senders observed at least one echoed mark (the decreases above
    # can only be triggered through the echo path).
    channel = service.daemon("h0").channels[0]
    assert channel.congestion.decreases >= 1


def test_no_congestion_state_when_disabled():
    service, _ = _congested_service(congestion_control=False)
    assert service.daemon("h0").channels[0].congestion is None


def test_throughput_not_destroyed_by_cc():
    # AIMD should converge near the bottleneck rate, not collapse: the CC
    # run may be at most ~2.5x slower than the uncontrolled blast.
    without, _ = _congested_service(congestion_control=False)
    t_without = _run_stream(without).stats.completion_time_ns
    with_cc, _ = _congested_service(congestion_control=True)
    t_with = _run_stream(with_cc).stats.completion_time_ns
    assert t_with < t_without * 2.5
