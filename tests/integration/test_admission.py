"""End-to-end admission control: overload becomes a bounded wait, not a
terminal error.

Every test pins the switch's memory with a streaming "hog" session that
holds the whole per-copy aggregator space, then watches what the
admission controller does with tasks submitted into the squeeze: queue
and grant on release, degrade to bypass at the deadline, or reject
loudly — always with exactly-once, bit-exact results.
"""

import dataclasses

import pytest

from repro.core.config import AskConfig
from repro.core.results import reference_aggregate
from repro.core.service import AskService
from repro.core.task import TaskPhase

#: AskConfig.small() has 32 aggregators per copy: one region of 32 pins
#: the whole space, so any further allocation fails until it is freed.
FULL = 32


def make_service(**overrides):
    knobs = dict(
        admission_control=True,
        admission_retry_us=20.0,
        admission_backoff=2.0,
        admission_backoff_cap_us=160.0,
        admission_deadline_us=None,
    )
    knobs.update(overrides)
    return AskService(dataclasses.replace(AskConfig.small(), **knobs), hosts=3)


def settle(service):
    service.run_to_completion()


# ---------------------------------------------------------------------------
# Queue -> grant on the release edge
# ---------------------------------------------------------------------------
def test_queued_task_grants_when_the_hog_releases():
    service = make_service()
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    service.run(until=service.clock.now + 50_000)
    streams = {"h0": [(b"k", 1)] * 40, "h1": [(b"k", 2)] * 40}
    task = service.submit(streams, receiver="h2", region_size=8)
    service.run(until=service.clock.now + 50_000)
    assert task.phase is TaskPhase.QUEUED
    hog.close()
    settle(service)
    assert task.phase is TaskPhase.COMPLETE
    assert task.result.values == reference_aggregate(
        streams, service.config.value_mask
    )
    assert task.stats.admission_wait_ns > 0
    assert not task.stats.degraded_to_bypass
    assert service.deployment.admission.granted == 1
    assert service.deployment.admission.waiting == 0


def test_queued_streaming_session_attaches_after_grant():
    service = make_service()
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    service.run(until=service.clock.now + 50_000)
    session = service.open_stream(["h0", "h1"], receiver="h2", region_size=8)
    service.run(until=service.clock.now + 50_000)
    assert session.task.phase is TaskPhase.QUEUED
    hog.close()
    service.run(until=service.clock.now + 100_000)
    session.feed("h0", [(b"s", 3)] * 10)
    session.feed("h1", [(b"s", 4)] * 10)
    session.close()
    settle(service)
    assert session.task.result.values == {b"s": 70}
    assert session.task.stats.admission_wait_ns > 0


# ---------------------------------------------------------------------------
# Backpressure: a queued task transmits nothing
# ---------------------------------------------------------------------------
def test_queued_task_sends_no_data():
    service = make_service()
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    task = service.submit(
        {"h0": [(b"quiet", 1)] * 100}, receiver="h2", region_size=8
    )
    service.run(until=service.clock.now + 200_000)
    # Queue residence is the backpressure: no sender job exists yet, so
    # not a single DATA (or bypass) packet has left the host.
    assert task.phase is TaskPhase.QUEUED
    assert task.stats.data_packets_sent == 0
    assert task.stats.bypass_packets_sent == 0
    hog.close()
    settle(service)
    assert task.result.values == {b"quiet": 100}
    assert task.stats.data_packets_sent > 0


# ---------------------------------------------------------------------------
# Deadline: degrade to bypass (or reject loudly when disabled)
# ---------------------------------------------------------------------------
def test_deadline_degrades_to_bypass_and_stays_exact():
    service = make_service(admission_deadline_us=120.0)
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    # Sender h1, not h0: the hog's never-finishing job owns h0's data
    # channel, and a bypass job queued behind it would never run.
    streams = {"h1": [(b"deg", 5)] * 30 + [(b"deg2", 1)] * 30}
    task = service.submit(streams, receiver="h2", region_size=8)
    # The hog never relents; the deadline must flip the task host-side.
    service.run(until=service.clock.now + 1_000_000)
    assert task.phase is TaskPhase.COMPLETE
    assert task.stats.degraded_to_bypass
    assert task.stats.admission_wait_ns == 120_000  # exactly the deadline
    # Every packet the degraded task sent was bypass-tagged: nothing hit
    # the switch program (bypass counts are a subset of data counts).
    assert task.stats.bypass_packets_sent == task.stats.data_packets_sent > 0
    assert task.result.values == reference_aggregate(
        streams, service.config.value_mask
    )
    assert service.deployment.admission.degraded == 1
    hog.close()
    settle(service)


def test_deadline_rejects_loudly_when_degrade_disabled():
    service = make_service(admission_deadline_us=120.0, admission_degrade=False)
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    task = service.submit(
        {"h0": [(b"x", 1)] * 10}, receiver="h2", region_size=8
    )
    service.run(until=service.clock.now + 1_000_000)
    assert task.phase is TaskPhase.FAILED
    assert "deadline" in task.failure_reason
    # Rejected tasks leave the service's books; the deployment stays usable.
    assert task.task_id not in service.tasks
    assert service.deployment.admission.rejected_deadline == 1
    hog.close()
    settle(service)
    result = service.aggregate(
        {"h0": [(b"after", 2)] * 5}, receiver="h2", check=True
    )
    assert result[b"after"] == 10


# ---------------------------------------------------------------------------
# Bounded queue
# ---------------------------------------------------------------------------
def test_queue_bound_rejects_the_overflow_task():
    service = make_service(admission_queue_limit=1)
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    service.run(until=service.clock.now + 50_000)
    queued = service.submit(
        {"h0": [(b"q", 1)] * 10}, receiver="h2", region_size=8
    )
    overflow = service.submit(
        {"h0": [(b"q", 1)] * 10}, receiver="h2", region_size=8
    )
    service.run(until=service.clock.now + 50_000)
    assert queued.phase is TaskPhase.QUEUED
    assert overflow.phase is TaskPhase.FAILED
    assert "queue full" in overflow.failure_reason
    assert service.deployment.admission.rejected_full == 1
    hog.close()
    settle(service)
    assert queued.result.values == {b"q": 10}


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def test_admission_outcome_is_bit_reproducible():
    def run_once():
        service = make_service(admission_deadline_us=120.0, admission_queue_limit=2)
        hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
        tasks = [
            service.submit(
                {"h0": [(b"r", i + 1)] * 20}, receiver="h2", region_size=8
            )
            for i in range(3)
        ]
        service.run(until=service.clock.now + 80_000)
        hog.close()
        settle(service)
        snap = service.deployment.admission.snapshot()
        outcomes = tuple(
            (t.phase.value, t.stats.admission_wait_ns, t.stats.degraded_to_bypass)
            for t in tasks
        )
        return snap, outcomes

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Default-off: the knob exists but nothing changes without it
# ---------------------------------------------------------------------------
def test_admission_disabled_keeps_the_loud_failure():
    from repro.core.errors import RegionExhaustedError

    service = AskService(AskConfig.small(), hosts=3)
    assert service.deployment.admission is None
    hog = service.open_stream(["h0"], receiver="h2", region_size=FULL)
    service.run(until=service.clock.now + 50_000)
    doomed = service.submit(
        {"h0": [(b"x", 1)] * 10}, receiver="h2", region_size=8
    )
    with pytest.raises(RegionExhaustedError):
        settle(service)
    assert doomed.phase is TaskPhase.FAILED
    hog.close()
    settle(service)
