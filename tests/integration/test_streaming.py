"""Tests for open-ended streaming aggregation (unbounded key-value streams)."""

import random

import pytest

from repro.core.config import AskConfig
from repro.core.errors import TaskStateError
from repro.core.service import AskService
from repro.core.task import TaskPhase
from repro.net.fault import FaultModel


def test_incremental_feeds_sum_exactly():
    service = AskService(AskConfig.small(), hosts=2)
    session = service.open_stream(["h0"], receiver="h1")
    session.feed("h0", [(b"cpu", 97)])
    service.run()
    session.feed("h0", [(b"cpu", 3), (b"mem", 5)])
    session.close()
    service.run_to_completion()
    assert session.result.values == {b"cpu": 100, b"mem": 5}


def test_feed_before_setup_is_buffered():
    service = AskService(AskConfig.small(), hosts=2)
    session = service.open_stream(["h0"], receiver="h1")
    # No simulator step has run: the channel does not exist yet.
    assert not session.is_live
    session.feed("h0", [(b"a", 1)] * 10)
    session.close()
    service.run_to_completion()
    assert session.result[b"a"] == 10


def test_multiple_senders_stream_concurrently():
    rng = random.Random(4)
    service = AskService(AskConfig.small(), hosts=3)
    session = service.open_stream(["h0", "h1"], receiver="h2")
    expected: dict[bytes, int] = {}
    for round_number in range(5):
        for host in ("h0", "h1"):
            batch = [
                (("k%02d" % rng.randint(0, 15)).encode(), rng.randint(1, 9))
                for _ in range(30)
            ]
            for key, value in batch:
                expected[key] = (expected.get(key, 0) + value) & 0xFFFFFFFF
            session.feed(host, batch)
        service.run()
    session.close()
    service.run_to_completion()
    assert session.result.values == expected


def test_streaming_survives_faults():
    service = AskService(
        AskConfig.small(),
        hosts=2,
        fault=FaultModel(loss_rate=0.08, duplicate_rate=0.05, reorder_rate=0.1, seed=6),
    )
    session = service.open_stream(["h0"], receiver="h1", region_size=2)
    total = 0
    for _ in range(6):
        session.feed("h0", [(b"k", 7)] * 25)
        total += 25 * 7
        service.run()
    session.close()
    service.run_to_completion()
    assert session.result[b"k"] == total
    assert session.task.stats.retransmissions > 0


def test_no_fin_until_close():
    service = AskService(AskConfig.small(), hosts=2)
    session = service.open_stream(["h0"], receiver="h1")
    session.feed("h0", [(b"a", 1)])
    service.run()
    # Everything sent and ACKed, but the stream is open: no FIN, no result.
    assert session.task.phase is TaskPhase.STREAMING
    assert session.result is None
    session.close()
    service.run_to_completion()
    assert session.task.is_complete


def test_feed_after_close_rejected():
    service = AskService(AskConfig.small(), hosts=2)
    session = service.open_stream(["h0"], receiver="h1")
    session.close()
    with pytest.raises(TaskStateError):
        session.feed("h0", [(b"a", 1)])
    service.run_to_completion()


def test_feed_from_non_sender_rejected():
    service = AskService(AskConfig.small(), hosts=3)
    session = service.open_stream(["h0"], receiver="h2")
    with pytest.raises(KeyError):
        session.feed("h1", [(b"a", 1)])
    session.close()
    service.run_to_completion()


def test_close_before_setup_still_completes():
    service = AskService(AskConfig.small(), hosts=2)
    session = service.open_stream(["h0"], receiver="h1")
    session.feed("h0", [(b"a", 2)])
    session.close()  # closed before the control plane even allocated
    service.run_to_completion()
    assert session.result[b"a"] == 2


def test_streaming_and_batch_tasks_share_channels():
    service = AskService(AskConfig.small(), hosts=2)
    session = service.open_stream(["h0"], receiver="h1", region_size=8)
    session.feed("h0", [(b"s", 1)] * 20)
    batch = service.submit({"h0": [(b"b", 1)] * 20}, receiver="h1", region_size=8)
    session.close()
    service.run_to_completion()
    assert session.result[b"s"] == 20
    assert batch.result[b"b"] == 20


def test_validation_of_stream_endpoints():
    service = AskService(AskConfig.small(), hosts=2)
    with pytest.raises(KeyError):
        service.open_stream(["h9"], receiver="h1")
    with pytest.raises(KeyError):
        service.open_stream(["h0"], receiver="h9")
    with pytest.raises(ValueError):
        service.open_stream([], receiver="h1")
