"""Very-stale packets (§3.3): delays beyond the window's reach.

A packet delayed past ``max_seq - W`` must be discarded by the stale
guard *before* touching ``seen`` or ``PktState`` — re-admitting it would
recycle another sequence's register cells.  These runs push reordering
delays beyond the retransmission timeout on both backends so stale
arrivals actually occur (asserted via the switch's drop counter), while
the end result stays bit-exact.
"""

import dataclasses

from repro.core.config import AskConfig
from repro.core.results import reference_aggregate
from repro.core.service import AskService
from repro.net.fault import FaultModel


def _streams():
    return {
        "h0": [(b"key%d" % (i % 8), i + 1) for i in range(400)],
        "h1": [(b"key%d" % (i % 5), 2 * i) for i in range(400)],
    }


def test_very_stale_packets_dropped_exactly_once_on_sim():
    # W=4 shrinks the stale horizon to a handful of packets; 400 µs
    # delays against a 100 µs retransmission timeout guarantee original
    # transmissions arrive long after their retransmitted successors.
    service = AskService(
        AskConfig.small(window_size=4),
        hosts=3,
        fault=FaultModel(
            reorder_rate=0.4,
            duplicate_rate=0.3,
            max_extra_delay_ns=400_000,
            seed=6,
        ),
    )
    streams = _streams()
    expected = reference_aggregate(
        {h: list(s) for h, s in streams.items()}, service.config.value_mask
    )
    result = service.aggregate(streams, receiver="h2")
    assert result.values == expected
    assert service.switch.dedup.stale_drops > 0, "no stale packet ever arrived"


def test_very_stale_packets_dropped_exactly_once_on_asyncio():
    # Same corner over real UDP: 5 ms delay ceiling against the 2 ms
    # wall-clock retransmission timeout.
    service = AskService(
        dataclasses.replace(
            AskConfig.small(window_size=4), retransmit_timeout_us=2000
        ),
        hosts=3,
        fault=FaultModel(
            reorder_rate=0.4,
            duplicate_rate=0.3,
            max_extra_delay_ns=5_000_000,
            seed=6,
        ),
        backend="asyncio",
    )
    try:
        streams = _streams()
        expected = reference_aggregate(
            {h: list(s) for h, s in streams.items()}, service.config.value_mask
        )
        result = service.aggregate(streams, receiver="h2")
        assert result.values == expected
        assert service.switch.dedup.stale_drops > 0, "no stale packet ever arrived"
    finally:
        service.close()
