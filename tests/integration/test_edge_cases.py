"""Hard-edge configurations and degenerate inputs."""

import pytest

from repro.core.config import AskConfig
from repro.core.packet import AskPacket, PacketFlag
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.net.simulator import Simulator
from repro.switch.program import SwitchAction
from repro.switch.switch import AskSwitch


def test_window_of_one_still_exact_under_loss():
    # W=1: stop-and-wait. The slowest legal configuration must stay exact.
    cfg = AskConfig.small(window_size=1)
    service = AskService(cfg, hosts=2, fault=FaultModel(loss_rate=0.1, seed=3))
    result = service.aggregate({"h0": [(b"k", 1)] * 40}, receiver="h1", check=True)
    assert result[b"k"] == 40


def test_one_bit_values_wrap_consistently():
    cfg = AskConfig.small(value_bits=1)
    service = AskService(cfg, hosts=2)
    result = service.aggregate({"h0": [(b"k", 1)] * 5}, receiver="h1", check=True)
    assert result[b"k"] == 1  # 5 mod 2


def test_single_aa_no_medium_groups():
    cfg = AskConfig(
        num_aas=1,
        aggregators_per_aa=32,
        medium_key_groups=0,
        window_size=8,
        data_channels_per_host=1,
    )
    service = AskService(cfg, hosts=2)
    result = service.aggregate(
        {"h0": [(b"a", 1), (b"b", 2), (b"a", 3)]}, receiver="h1", check=True
    )
    assert result.values == {b"a": 4, b"b": 2}


def test_empty_sender_stream_sends_only_fin():
    service = AskService(AskConfig.small(), hosts=3)
    task = service.submit(
        {"h0": [], "h1": [(b"k", 1)]}, receiver="h2"
    )
    service.run_to_completion()
    assert task.result.values == {b"k": 1}
    assert task.stats.data_packets_sent == 1  # h0 contributed nothing


def test_single_tuple_task():
    service = AskService(AskConfig.small(), hosts=2)
    result = service.aggregate({"h0": [(b"one", 42)]}, receiver="h1", check=True)
    assert result.values == {b"one": 42}


def test_empty_bitmap_data_packet_is_acked_not_forwarded():
    # A degenerate (all-blank) data packet: the switch consumes it.
    cfg = AskConfig.small()
    switch = AskSwitch(cfg, Simulator(), max_tasks=2, max_channels=4)
    switch.controller.allocate_region(1)
    pkt = AskPacket(PacketFlag.DATA, 1, "h0", "h1", 0, 0, bitmap=0,
                    slots=(None,) * cfg.num_aas)
    decision = switch.program.process(switch.pipeline.begin_pass(), pkt)
    assert decision.action is SwitchAction.ACK


def test_zero_value_tuples_are_counted_not_lost():
    # value 0 must still claim/match an aggregator and appear in the result.
    service = AskService(AskConfig.small(), hosts=2)
    result = service.aggregate(
        {"h0": [(b"zero", 0), (b"zero", 0)]}, receiver="h1", check=True
    )
    assert result.values == {b"zero": 0}


def test_huge_values_wrap_like_hardware():
    service = AskService(AskConfig.small(), hosts=2)
    big = 0xFFFF_FFFF
    result = service.aggregate(
        {"h0": [(b"k", big), (b"k", big)]}, receiver="h1", check=True
    )
    assert result[b"k"] == (2 * big) & 0xFFFF_FFFF


def test_empty_key_is_a_valid_short_key():
    service = AskService(AskConfig.small(), hosts=2)
    result = service.aggregate(
        {"h0": [(b"", 7), (b"", 3)]}, receiver="h1", check=True
    )
    assert result.values == {b"": 10}


def test_hundreds_of_distinct_medium_keys():
    cfg = AskConfig.small(aggregators_per_aa=2048)
    service = AskService(cfg, hosts=2)
    stream = [(("med%03d" % i).encode(), i) for i in range(500)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    assert len(result) == 500


def test_swap_threshold_of_one_packet():
    cfg = AskConfig.small(swap_threshold_packets=1)
    service = AskService(cfg, hosts=2)
    stream = [(("k%02d" % (i % 20)).encode(), 1) for i in range(200)]
    result = service.aggregate({"h0": stream}, receiver="h1", region_size=1, check=True)
    # Swaps are serialized (notify -> ack -> fetch) so the count is bounded
    # by round trips, not by the threshold alone; at least some must fire.
    assert result.stats.swaps >= 2


def test_retransmit_timeout_shorter_than_rtt_still_terminates():
    # Pathological RTO: every packet times out before its ACK can return.
    # Throughput collapses but correctness and termination must hold.
    cfg = AskConfig.small(retransmit_timeout_us=1.0, link_latency_ns=5_000)
    service = AskService(cfg, hosts=2)
    result = service.aggregate({"h0": [(b"k", 1)] * 10}, receiver="h1", check=True)
    assert result[b"k"] == 10
    assert result.stats.retransmissions > 0
