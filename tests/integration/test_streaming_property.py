"""Property: streaming sessions are exact for any feed/run interleaving."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 10_000),
    bursts=st.integers(1, 8),
    run_between=st.booleans(),
    loss=st.floats(0, 0.12),
)
def test_streaming_exactly_once_property(seed, bursts, run_between, loss):
    rng = random.Random(seed)
    fault = FaultModel(loss_rate=loss, duplicate_rate=loss / 2, seed=seed)
    service = AskService(AskConfig.small(), hosts=3, fault=fault)
    session = service.open_stream(["h0", "h1"], receiver="h2", region_size=4)
    expected: dict[bytes, int] = {}
    for _ in range(bursts):
        host = rng.choice(["h0", "h1"])
        batch = [
            (("k%02d" % rng.randint(0, 12)).encode(), rng.randint(1, 9))
            for _ in range(rng.randint(1, 40))
        ]
        for key, value in batch:
            expected[key] = (expected.get(key, 0) + value) & 0xFFFFFFFF
        session.feed(host, batch)
        if run_between:
            service.run()
    session.close()
    service.run_to_completion()
    assert session.result.values == expected


def test_large_sequence_numbers_do_not_break_dedup():
    """Channels are persistent across many tasks; sequence numbers grow
    without bound and the window machinery must stay exact far beyond the
    initial windows."""
    cfg = AskConfig.small(window_size=4)
    service = AskService(cfg, hosts=2)
    for round_number in range(30):  # ~30 windows of traffic on one channel
        result = service.aggregate(
            {"h0": [(b"k", 1)] * 10}, receiver="h1", check=True
        )
        assert result[b"k"] == 10
    channel = service.daemon("h0").channels[0]
    assert channel.window.next_seq > 300
