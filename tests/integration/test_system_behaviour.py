"""Integration tests beyond exactly-once: isolation, persistence, hardware
constraints holding end-to-end, and functional scalability."""

import random

import pytest

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.net.simulator import to_seconds


def test_concurrent_tasks_never_mix_under_faults():
    fault = FaultModel(loss_rate=0.05, duplicate_rate=0.05, seed=42)
    service = AskService(AskConfig.small(), hosts=4, fault=fault)
    # Same keys, different tasks and receivers: results must stay disjoint.
    t1 = service.submit({"h0": [(b"key", 1)] * 120}, receiver="h2", region_size=8)
    t2 = service.submit({"h1": [(b"key", 7)] * 120}, receiver="h3", region_size=8)
    service.run_to_completion()
    assert t1.result.values == {b"key": 120}
    assert t2.result.values == {b"key": 840}


def test_many_sequential_tasks_on_persistent_channels():
    service = AskService(AskConfig.small(window_size=8), hosts=2)
    for round_number in range(1, 8):
        result = service.aggregate(
            {"h0": [(b"x", 1)] * 25}, receiver="h1", check=True
        )
        assert result[b"x"] == 25
    # All rounds multiplexed one persistent channel / sequence space.
    assert service.switch.controller.num_channels == 1


def test_full_default_geometry_end_to_end():
    service = AskService(AskConfig(), hosts=2)
    # Short 4-byte keys spread over the 16 short-key slots.
    stream = [(("%04d" % (i % 500)).encode(), 1) for i in range(20_000)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    assert len(result) == 500
    # Multi-key packets: far fewer packets than tuples.
    assert result.stats.data_packets_sent < len(stream) / 8


def test_hardware_constraints_hold_for_entire_run():
    """Every packet pass in a full run satisfies the PISA access rules —
    RegisterAccessError would propagate out of service.run()."""
    cfg = AskConfig.small(swap_threshold_packets=4)
    fault = FaultModel(loss_rate=0.05, duplicate_rate=0.05, reorder_rate=0.1, seed=2)
    service = AskService(cfg, hosts=3, fault=fault)
    rng = random.Random(0)
    streams = {
        h: [(("k%02d" % rng.randint(0, 30)).encode(), 1) for _ in range(300)]
        for h in ("h0", "h1")
    }
    service.aggregate(streams, receiver="h2", region_size=8, check=True)
    assert service.switch.pipeline.passes > 0


def test_switch_absorbs_most_traffic_with_ample_memory():
    service = AskService(AskConfig.small(aggregators_per_aa=2048), hosts=2)
    stream = [(("k%03d" % (i % 50)).encode(), 1) for i in range(2000)]
    result = service.aggregate({"h0": stream}, receiver="h1", check=True)
    assert result.stats.switch_aggregation_ratio > 0.95
    assert result.stats.switch_ack_ratio > 0.9


def test_per_sender_throughput_flat_with_more_senders():
    """Functional Fig. 13(b): with the switch absorbing traffic, adding
    senders leaves per-sender completion time (≈ throughput) constant."""

    def sender_time(num_senders):
        # 1 Gbps links: if traffic funneled to the receiver, time would
        # grow with the sender count; switch absorption keeps it flat.
        cfg = AskConfig.small(
            aggregators_per_aa=2048, link_latency_ns=200, link_bandwidth_gbps=1.0
        )
        service = AskService(cfg, hosts=num_senders + 1)
        stream = [(("k%02d" % (i % 30)).encode(), 1) for i in range(2000)]
        streams = {f"h{i}": list(stream) for i in range(num_senders)}
        result = service.aggregate(streams, receiver=f"h{num_senders}", check=True)
        return to_seconds(result.stats.completion_time_ns)

    alone = sender_time(1)
    crowd = sender_time(4)
    assert crowd < alone * 1.6  # roughly flat, not ~4x like NoAggr


def test_receiver_bottleneck_when_nothing_aggregates():
    """The NoAggr contrast: disjoint keys per sender at region size 1 mean
    almost everything funnels to the receiver link, so completion time
    grows with the sender count."""

    def sender_time(num_senders):
        # 1 Gbps links make serialization (not setup latency) dominate.
        cfg = AskConfig.small(link_latency_ns=200, link_bandwidth_gbps=1.0)
        service = AskService(cfg, hosts=num_senders + 1)
        streams = {
            f"h{i}": [(("%d%03d" % (i, j)).encode(), 1) for j in range(2000)]
            for i in range(num_senders)
        }
        result = service.aggregate(streams, receiver=f"h{num_senders}", region_size=1)
        return to_seconds(result.stats.completion_time_ns)

    alone = sender_time(1)
    crowd = sender_time(4)
    assert crowd > alone * 2.0


def test_trace_enabled_service_records_the_flow():
    cfg = AskConfig.small(trace=True)
    service = AskService(cfg, hosts=2)
    service.aggregate({"h0": [(b"a", 1)]}, receiver="h1")
    kinds = {record.kind for record in service.trace}
    assert "ingress" in kinds
    assert "ack" in kinds or "forward" in kinds


def test_completion_time_is_plausible():
    service = AskService(AskConfig.small(), hosts=2)
    result = service.aggregate({"h0": [(b"a", 1)] * 100}, receiver="h1")
    elapsed = result.stats.completion_time_ns
    assert elapsed is not None
    # Setup costs two control-plane latencies; everything must finish in
    # simulated milliseconds, not seconds.
    assert 2 * 10_000 < elapsed < 50_000_000
