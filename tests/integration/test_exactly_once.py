"""The headline correctness property (§3.3): exactly-once aggregation.

For any loss/duplication/reordering schedule the network can produce, the
merged result (switch copies + receiver residual) must equal the exact
reference aggregation — no tuple lost, none double-counted.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.workloads.generators import zipf_stream
from repro.workloads.stream import exact_aggregate, merge_results


def _expected(streams):
    return merge_results([exact_aggregate(s, 32) for s in streams.values()], 32)


def _run(streams, fault, config=None, hosts=None, region_size=None):
    cfg = config or AskConfig.small()
    hosts = hosts or (len(streams) + 1)
    service = AskService(cfg, hosts=hosts, fault=fault)
    receiver = service.hosts[-1]
    result = service.aggregate(
        {h: s for h, s in streams.items()}, receiver=receiver, region_size=region_size
    )
    assert result.values == _expected(streams), "exactly-once violated"
    return result


FAULT_MATRIX = [
    FaultModel.reliable(),
    FaultModel(loss_rate=0.02, seed=1),
    FaultModel(loss_rate=0.15, seed=2),
    FaultModel(duplicate_rate=0.15, seed=3),
    FaultModel(reorder_rate=0.25, max_extra_delay_ns=80_000, seed=4),
    FaultModel(loss_rate=0.05, duplicate_rate=0.05, reorder_rate=0.1, seed=5),
    FaultModel(loss_rate=0.1, duplicate_rate=0.1, reorder_rate=0.2, seed=6),
]


@pytest.mark.parametrize("fault", FAULT_MATRIX, ids=lambda f: f"loss{f.loss_rate}-dup{f.duplicate_rate}-re{f.reorder_rate}")
def test_exactly_once_under_fault_matrix(fault):
    rng = random.Random(11)
    words = [("w%03d" % i).encode() for i in range(60)]
    streams = {
        f"h{i}": [(rng.choice(words), rng.randint(1, 50)) for _ in range(300)]
        for i in range(2)
    }
    result = _run(streams, fault)
    if not fault.is_reliable and fault.loss_rate:
        assert result.stats.retransmissions > 0


def test_exactly_once_with_mixed_key_classes_under_loss():
    rng = random.Random(5)
    keys = (
        [("k%02d" % i).encode() for i in range(20)]  # short
        + [("medium%02d" % i).encode()[:7] for i in range(20)]  # medium
        + [("a-long-key-%04d" % i).encode() for i in range(10)]  # long
    )
    streams = {"h0": [(rng.choice(keys), rng.randint(1, 9)) for _ in range(600)]}
    _run(streams, FaultModel(loss_rate=0.08, duplicate_rate=0.05, seed=21))


def test_exactly_once_with_tiny_region_heavy_collisions():
    # Region of 1 aggregator: nearly everything is partially aggregated and
    # forwarded, exercising PktState bitmaps under retransmission.
    rng = random.Random(7)
    streams = {
        "h0": [(("k%02d" % rng.randint(0, 30)).encode(), 1) for _ in range(400)]
    }
    _run(streams, FaultModel(loss_rate=0.1, duplicate_rate=0.08, seed=8), region_size=1)


def test_exactly_once_with_swaps_under_faults():
    cfg = AskConfig.small(swap_threshold_packets=3)
    stream = zipf_stream(800, 64, alpha=1.0, order="shuffled", seed=2)
    _run(
        {"h0": stream},
        FaultModel(loss_rate=0.07, duplicate_rate=0.07, reorder_rate=0.1, seed=31),
        config=cfg,
        region_size=4,
    )


def test_exactly_once_with_many_senders():
    rng = random.Random(13)
    streams = {
        f"h{i}": [(("k%02d" % rng.randint(0, 40)).encode(), 1) for _ in range(200)]
        for i in range(5)
    }
    _run(streams, FaultModel(loss_rate=0.05, duplicate_rate=0.05, seed=17))


def test_window_spanning_stream_under_extreme_reordering():
    # More packets than 3 windows, with delays long enough to create stale
    # arrivals at the switch.
    cfg = AskConfig.small(window_size=4)
    stream = [(("k%02d" % (i % 8)).encode(), 1) for i in range(400)]
    _run(
        {"h0": stream},
        FaultModel(reorder_rate=0.4, duplicate_rate=0.2, max_extra_delay_ns=400_000, seed=3),
        config=cfg,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(0, 0.2),
    dup=st.floats(0, 0.2),
    reorder=st.floats(0, 0.3),
    num_keys=st.integers(1, 40),
    tuples=st.integers(1, 250),
    senders=st.integers(1, 3),
)
def test_exactly_once_property(seed, loss, dup, reorder, num_keys, tuples, senders):
    """Randomized end-to-end exactly-once: any workload, any fault mix."""
    rng = random.Random(seed)
    keys = [("k%03d" % i).encode() for i in range(num_keys)]
    streams = {
        f"h{i}": [
            (rng.choice(keys), rng.randint(0, 2**31)) for _ in range(tuples)
        ]
        for i in range(senders)
    }
    fault = FaultModel(
        loss_rate=loss,
        duplicate_rate=dup,
        reorder_rate=reorder,
        max_extra_delay_ns=100_000,
        seed=seed,
    )
    _run(streams, fault, region_size=8)
