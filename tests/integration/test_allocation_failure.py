"""Allocation failure without admission control, on both backends.

With ``admission_control`` off (the default), region exhaustion at
submit/open_stream time must fail the task loudly — reason recorded,
handle settled, task dropped from the service's books — and leave the
service fully reusable.  These are the branches the admission controller
replaces, so they get direct coverage on the sim and asyncio backends.
"""

import pytest

from repro.core.config import AskConfig
from repro.core.errors import RegionExhaustedError
from repro.core.service import AskService
from repro.core.task import TaskPhase

FULL = 32  # AskConfig.small(): the whole per-copy aggregator space


def drive(service, backend):
    """Advance far enough for scheduled setup callbacks to run."""
    if backend == "sim":
        service.run(until=service.clock.now + 100_000)
    else:
        service.run()  # one wall-clock slice


def wait_settled(service, task, backend):
    if backend == "sim":
        with pytest.raises(RegionExhaustedError):
            service.run_to_completion()
    else:
        # The asyncio loop logs the callback's exception instead of
        # propagating; observe the handle.
        for _ in range(100):
            if task.is_settled:
                break
            service.run()
    assert task.is_settled


@pytest.mark.parametrize("backend", ["sim", "asyncio"])
def test_submit_allocation_failure_is_loud_and_service_survives(backend):
    service = AskService(AskConfig.small(), hosts=2, backend=backend)
    try:
        hog = service.open_stream(["h0"], receiver="h1", region_size=FULL)
        drive(service, backend)
        doomed = service.submit(
            {"h0": [(b"k", 1)] * 10}, receiver="h1", region_size=8
        )
        wait_settled(service, doomed, backend)
        assert doomed.phase is TaskPhase.FAILED
        assert "region allocation failed" in doomed.failure_reason
        assert doomed.task_id not in service.tasks
        hog.close()
        # Drain the hog's teardown first: without admission control a
        # reuse task racing the region release would fail loudly again.
        service.run_to_completion(timeout_s=30.0)
        result = service.aggregate(
            {"h0": [(b"again", 2)] * 5}, receiver="h1", check=True
        )
        assert result[b"again"] == 10
    finally:
        service.close()


@pytest.mark.parametrize("backend", ["sim", "asyncio"])
def test_open_stream_allocation_failure_is_loud_and_service_survives(backend):
    service = AskService(AskConfig.small(), hosts=2, backend=backend)
    try:
        hog = service.open_stream(["h0"], receiver="h1", region_size=FULL)
        drive(service, backend)
        doomed = service.open_stream(["h0"], receiver="h1", region_size=8)
        wait_settled(service, doomed.task, backend)
        assert doomed.task.phase is TaskPhase.FAILED
        assert "region allocation failed" in doomed.task.failure_reason
        assert doomed.task.task_id not in service.tasks
        hog.close()
        service.run_to_completion(timeout_s=30.0)
        follow_up = service.open_stream(["h0"], receiver="h1", region_size=8)
        follow_up.feed("h0", [(b"s", 7)] * 4)
        follow_up.close()
        service.run_to_completion(timeout_s=30.0)
        assert follow_up.task.result.values == {b"s": 28}
    finally:
        service.close()
