"""The hierarchical-tree equivalence contract.

Whatever the tree shape and placement policy, a spine–leaf deployment must
produce the exact aggregate of a flat single-switch run — aggregation is
commutative and associative mod 2^value_bits, so *where* the merging
happens (leaf, spine, receiver host) can never change *what* is merged.
The property below drives generated workloads through every placement
policy and compares ``values_sha256`` fingerprints against the
single-switch reference; the crash drills then assert the contract holds
through a spine failure on both backends (exactly-once under subtree
bypass + replay).
"""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.errors import ConfigError
from repro.core.results import reference_aggregate, values_sha256
from repro.core.service import PLACEMENTS, AskService, TreeAskService
from repro.net.fault import FaultModel
from repro.runtime.builder import DeploymentBuilder

#: 2 pods x 2 racks x 2 hosts — the smallest tree with a cross-pod path.
PODS = {
    "s0": {"r0": ["h0", "h1"], "r1": ["h2", "h3"]},
    "s1": {"r2": ["h4", "h5"], "r3": ["h6", "h7"]},
}
SENDERS = ("h0", "h2", "h4", "h6")  # one per rack, both pods


def _flat_fingerprint(streams, config):
    service = AskService(config, hosts=8)
    try:
        result = service.aggregate(streams, receiver="h7", check=True)
        return values_sha256(result.values)
    finally:
        service.close()


def _tree_fingerprint(streams, config, placement, fault=None, backend="sim"):
    service = TreeAskService(
        config, pods=PODS, placement=placement, fault=fault, backend=backend
    )
    try:
        result = service.aggregate(streams, receiver="h7", check=True)
        return values_sha256(result.values)
    finally:
        service.close()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 1000),
    num_keys=st.integers(1, 20),
    tuples=st.integers(1, 120),
    placement=st.sampled_from(PLACEMENTS),
)
def test_tree_matches_flat_single_switch_reference(seed, num_keys, tuples, placement):
    rng = random.Random(seed)
    keys = [b"k%02d" % i for i in range(num_keys)]
    streams = {
        sender: [(rng.choice(keys), rng.randint(0, 2**20)) for _ in range(tuples)]
        for sender in SENDERS
    }
    config = AskConfig.small()
    flat = _flat_fingerprint(streams, config)
    fault = FaultModel(loss_rate=0.05, duplicate_rate=0.05, seed=seed)
    assert _tree_fingerprint(streams, config, placement, fault=fault) == flat
    expected = reference_aggregate(streams, config.value_mask)
    assert flat == values_sha256(expected)


# ----------------------------------------------------------------------
# Spine crash mid-task: exactly-once on both backends
# ----------------------------------------------------------------------
def _crash_config(backend):
    config = AskConfig.small()
    return dataclasses.replace(
        config,
        failure_detection=True,
        heartbeat_interval_us=50.0 if backend == "sim" else 2_000.0,
        retransmit_timeout_us=100.0 if backend == "sim" else 2_000.0,
    )


def _streams():
    return {
        "h0": [(b"hot", 1)] * 40 + [(b"k%04d" % i, i) for i in range(400)],
        "h2": [(b"hot", 2)] * 40 + [(b"k%04d" % i, 1) for i in range(300)],
        "h4": [(b"k%04d" % i, 2) for i in range(300)],
    }


@pytest.mark.parametrize("backend", ["sim", "asyncio"])
@pytest.mark.parametrize("placement", ["spine", "both"])
def test_spine_crash_mid_task_stays_exactly_once(backend, placement):
    """Crash the spine holding a task's combiner regions while the task is
    in flight; the supervisor degrades that subtree to bypass, replays,
    and the result must still be bit-exact (no loss, no double-count)."""
    from repro.chaos import ChaosOrchestrator, ChaosSchedule
    from repro.chaos.schedule import ChaosEvent

    sim = backend == "sim"
    horizon = 250_000 if sim else 30_000_000
    service = TreeAskService(
        _crash_config(backend), pods=PODS, placement=placement, backend=backend
    )
    try:
        schedule = ChaosSchedule(
            seed=0,
            horizon_ns=horizon,
            events=(
                ChaosEvent(horizon // 4, "crash", "spine-s0"),
                ChaosEvent((horizon * 3) // 4, "restore", "spine-s0"),
            ),
        )
        orchestrator = ChaosOrchestrator(service.deployment, schedule)
        start = getattr(service.fabric, "start", None)
        if start is not None:
            start()
        orchestrator.arm()
        streams = _streams()
        result = service.aggregate(streams, receiver="h7", check=True)
        expected = reference_aggregate(streams, service.config.value_mask)
        assert dict(result.items()) == expected
        injected = [e["kind"] for e in orchestrator.injected]
        assert "crash" in injected
    finally:
        service.close()


def test_leaf_crash_under_spine_placement_stays_exactly_once():
    """The leaf holds no regions under "spine" placement, but its death
    still strands its senders' in-flight packets — the supervisor must
    find the task via the path map, not via region bookkeeping."""
    from repro.chaos import ChaosOrchestrator, ChaosSchedule
    from repro.chaos.schedule import ChaosEvent

    service = TreeAskService(_crash_config("sim"), pods=PODS, placement="spine")
    try:
        schedule = ChaosSchedule(
            seed=0,
            horizon_ns=250_000,
            events=(
                ChaosEvent(60_000, "crash", "tor-r0"),
                ChaosEvent(180_000, "restore", "tor-r0"),
            ),
        )
        orchestrator = ChaosOrchestrator(service.deployment, schedule)
        orchestrator.arm()
        streams = _streams()
        result = service.aggregate(streams, receiver="h7", check=True)
        expected = reference_aggregate(streams, service.config.value_mask)
        assert dict(result.items()) == expected
    finally:
        service.close()


# ----------------------------------------------------------------------
# Vectorized x tree: pinned to a clean config-time rejection
# ----------------------------------------------------------------------
def test_vectorized_tree_is_rejected_at_build_time():
    """The SoA data plane has no combiner-region admission path; rather
    than silently mis-aggregate, a vectorized tree build must fail fast
    with a ConfigError.  This test pins that choice — if the vectorized
    plane ever learns region ``sources``, replace this with a fingerprint
    equivalence check."""
    config = dataclasses.replace(AskConfig.small(), vectorized=True)
    builder = DeploymentBuilder(config)
    spine = builder.add_spine()
    builder.add_rack(2, spine=spine)
    with pytest.raises(ConfigError, match="vectorized"):
        builder.build(on_task_complete=lambda t: None)


def test_vectorized_flat_multirack_still_builds():
    """The rejection is tree-specific: vectorized flat multi-rack (the
    pre-tree §7 layout) keeps working."""
    config = dataclasses.replace(AskConfig.small(), vectorized=True)
    builder = DeploymentBuilder(config)
    builder.add_rack(2).add_rack(2)
    deployment = builder.build(on_task_complete=lambda t: None)
    deployment.close()
