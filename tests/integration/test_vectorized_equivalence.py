"""Property: the vectorized SoA data plane equals the scalar oracle
end-to-end.

Beyond the engine-level differential tests, this drives whole deployments
— senders, faulty links, retransmission, swaps, fetch-and-reset — and
demands byte-identical final aggregates AND identical switch-side
counters (dedup drops, duplicates, pool statistics).  The scalar compiled
path is the oracle; any divergence is a vectorization bug.
"""

import dataclasses
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.switch.vectorized import VectorizedAskSwitch


def _run(factory, streams, fault_seed, region_size, shadow):
    cfg = AskConfig.small(shadow_copy=shadow, swap_threshold_packets=16)
    kwargs = {"switch_factory": factory} if factory is not None else {}
    fault = FaultModel(
        loss_rate=0.05, duplicate_rate=0.05, reorder_rate=0.05, seed=fault_seed
    )
    service = AskService(cfg, hosts=2, fault=fault, **kwargs)
    result = service.aggregate(
        {"h0": list(streams)}, receiver="h1", region_size=region_size, check=True
    )
    switch = service.switch
    stats = switch.program.stats
    counters = {
        "data_packets": stats.data_packets,
        "packets_acked": stats.packets_acked,
        "packets_forwarded": stats.packets_forwarded,
        "stale_drops": stats.stale_drops,
        "retransmissions_seen": stats.retransmissions_seen,
        "tuples_seen": stats.tuples_seen,
        "tuples_aggregated": stats.tuples_aggregated,
        "swaps": stats.swaps,
        "fins": stats.fins,
        "long_packets": stats.long_packets,
        "unit_stale": switch.dedup.stale_drops,
        "unit_dups": switch.dedup.duplicates_detected,
        "pool_aggregated": switch.pool.tuples_aggregated,
        "pool_failed": switch.pool.tuples_failed,
        "pool_reserved": switch.pool.aggregators_reserved,
    }
    return result, counters


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 1000),
    num_keys=st.integers(1, 25),
    tuples=st.integers(1, 150),
    region=st.sampled_from([1, 4, 16]),
    key_length=st.sampled_from([3, 6, 14]),  # short / medium / long keys
    shadow=st.booleans(),
)
def test_vectorized_and_scalar_agree(seed, num_keys, tuples, region, key_length, shadow):
    rng = random.Random(seed)
    keys = [("k%0*d" % (key_length - 1, i)).encode() for i in range(num_keys)]
    stream = [(rng.choice(keys), rng.randint(0, 2**20)) for _ in range(tuples)]
    scalar, scalar_counters = _run(None, stream, seed, region, shadow)
    vector, vector_counters = _run(VectorizedAskSwitch, stream, seed, region, shadow)
    assert scalar.values == vector.values
    assert scalar_counters == vector_counters
    # Tuple conservation holds on both backends.
    for result in (scalar, vector):
        assert (
            result.stats.tuples_aggregated_at_switch
            + result.stats.tuples_merged_at_receiver
            == tuples
        )


def test_config_gate_selects_the_vectorized_backend_end_to_end():
    cfg = AskConfig.small(vectorized=True)
    service = AskService(cfg, hosts=2)
    assert type(service.switch) is VectorizedAskSwitch
    stream = [(b"key%d" % (i % 7), i) for i in range(100)]
    result = service.aggregate({"h0": stream}, receiver="h1", region_size=16, check=True)
    # Same answer as the scalar default.
    scalar = AskService(dataclasses.replace(cfg, vectorized=False), hosts=2)
    reference = scalar.aggregate(
        {"h0": list(stream)}, receiver="h1", region_size=16, check=True
    )
    assert result.values == reference.values


def test_mixed_key_classes_with_heavy_faults_agree():
    rng = random.Random(31)
    keys = (
        [("s%02d" % i).encode() for i in range(8)]
        + [("medium%02d" % i).encode() for i in range(8)]
        + [("long-key-%012d" % i).encode() for i in range(4)]
    )
    stream = [(rng.choice(keys), rng.randrange(1, 500)) for _ in range(600)]
    for shadow in (False, True):
        scalar, scalar_counters = _run(None, stream, 31, 8, shadow)
        vector, vector_counters = _run(VectorizedAskSwitch, stream, 31, 8, shadow)
        assert scalar.values == vector.values
        assert scalar_counters == vector_counters
