"""Property: the PISA and Trio backends compute the same aggregates.

The two data planes differ in everything internal (register arrays vs DRAM
tables, coalesced segments vs full keys, shadow copies vs none) but the
service contract is the same; any divergence in final results would be a
bug in one of them.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.switch.trio import TrioSwitch


def _aggregate(factory, streams, fault_seed, region_size):
    cfg = AskConfig.small(shadow_copy=False, swap_threshold_packets=16)
    kwargs = {"switch_factory": factory} if factory is not None else {}
    fault = FaultModel(
        loss_rate=0.05, duplicate_rate=0.05, reorder_rate=0.05, seed=fault_seed
    )
    service = AskService(cfg, hosts=2, fault=fault, **kwargs)
    return service.aggregate(
        {"h0": list(streams)}, receiver="h1", region_size=region_size, check=True
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 1000),
    num_keys=st.integers(1, 25),
    tuples=st.integers(1, 150),
    region=st.sampled_from([1, 4, 16]),
    key_length=st.sampled_from([3, 6, 14]),  # short / medium / long keys
)
def test_pisa_and_trio_agree(seed, num_keys, tuples, region, key_length):
    rng = random.Random(seed)
    keys = [("k%0*d" % (key_length - 1, i)).encode() for i in range(num_keys)]
    stream = [(rng.choice(keys), rng.randint(0, 2**20)) for _ in range(tuples)]
    pisa = _aggregate(None, stream, seed, region)
    trio = _aggregate(TrioSwitch, stream, seed, region)
    assert pisa.values == trio.values
    # Totals are conserved on both backends.
    assert (
        pisa.stats.tuples_aggregated_at_switch + pisa.stats.tuples_merged_at_receiver
        == tuples
    )
    assert (
        trio.stats.tuples_aggregated_at_switch + trio.stats.tuples_merged_at_receiver
        == tuples
    )


def test_trio_never_aggregates_less_than_pisa_on_mixed_keys():
    rng = random.Random(3)
    keys = (
        [("s%02d" % i).encode() for i in range(10)]
        + [("med%03d" % i).encode() for i in range(10)]
        + [("long-key-%06d" % i).encode() for i in range(10)]
    )
    stream = [(rng.choice(keys), 1) for _ in range(600)]
    pisa = _aggregate(None, stream, 3, region_size=32)
    trio = _aggregate(TrioSwitch, stream, 3, region_size=32)
    assert (
        trio.stats.switch_aggregation_ratio >= pisa.stats.switch_aggregation_ratio
    )
