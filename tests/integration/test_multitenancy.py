"""Tests for §7 multi-tenancy: tenant-encoded task IDs, isolation, quotas."""

import pytest

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.core.tenancy import (
    QuotaAccountingError,
    TenantQuotaError,
    TenantQuotas,
    encode_task_id,
    local_task_of,
    tenant_of,
)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def test_task_id_roundtrip():
    task_id = encode_task_id(7, 42)
    assert tenant_of(task_id) == 7
    assert local_task_of(task_id) == 42


def test_plain_ids_belong_to_default_tenant():
    assert tenant_of(5) == 0


def test_encoding_bounds_checked():
    with pytest.raises(ValueError):
        encode_task_id(-1, 0)
    with pytest.raises(ValueError):
        encode_task_id(0, 1 << 32)


def test_distinct_tenants_never_collide():
    ids = {encode_task_id(t, n) for t in range(4) for n in range(4)}
    assert len(ids) == 16


# ---------------------------------------------------------------------------
# Quotas
# ---------------------------------------------------------------------------
def test_quota_charging_and_refund():
    quotas = TenantQuotas()
    quotas.set(3, 100)
    quotas.charge(encode_task_id(3, 1), 60)
    with pytest.raises(TenantQuotaError):
        quotas.charge(encode_task_id(3, 2), 60)
    quotas.refund(encode_task_id(3, 1), 60)
    quotas.charge(encode_task_id(3, 2), 60)


def test_unlimited_without_quota():
    quotas = TenantQuotas()
    quotas.charge(encode_task_id(9, 1), 10**6)


def test_quota_is_per_tenant():
    quotas = TenantQuotas()
    quotas.set(1, 10)
    quotas.charge(encode_task_id(1, 1), 10)
    quotas.charge(encode_task_id(2, 1), 1000)  # other tenant unaffected


# ---------------------------------------------------------------------------
# Ledger hardening: every allocation is charged once and refunded once,
# with matching sizes; anything else is a controller bug and fails loudly.
# ---------------------------------------------------------------------------
def test_double_charge_is_a_tagged_accounting_error():
    quotas = TenantQuotas()
    task = encode_task_id(1, 1)
    quotas.charge(task, 8)
    with pytest.raises(QuotaAccountingError) as excinfo:
        quotas.charge(task, 8)
    assert excinfo.value.reason == "double-charge"
    # The failed charge must not have touched the ledger.
    assert quotas.used_by(1) == 8


def test_refund_for_unknown_task_is_a_tagged_accounting_error():
    quotas = TenantQuotas()
    with pytest.raises(QuotaAccountingError) as excinfo:
        quotas.refund(encode_task_id(1, 99), 8)
    assert excinfo.value.reason == "unknown-task"


def test_refund_size_mismatch_is_a_tagged_accounting_error():
    quotas = TenantQuotas()
    task = encode_task_id(2, 1)
    quotas.charge(task, 8)
    with pytest.raises(QuotaAccountingError) as excinfo:
        quotas.refund(task, 16)
    assert excinfo.value.reason == "size-mismatch"
    # The charge is still outstanding; the correct refund settles it.
    quotas.refund(task, 8)
    assert quotas.used_by(2) == 0


def test_double_refund_is_rejected():
    quotas = TenantQuotas()
    task = encode_task_id(3, 1)
    quotas.charge(task, 8)
    quotas.refund(task, 8)
    with pytest.raises(QuotaAccountingError) as excinfo:
        quotas.refund(task, 8)
    assert excinfo.value.reason == "unknown-task"
    assert quotas.used_by(3) == 0  # never driven negative


def test_accounting_errors_are_not_quota_errors():
    # Callers catch TenantQuotaError to mean "tenant over budget, queue
    # or fail the task"; a ledger bug must never be swallowed that way.
    assert not issubclass(QuotaAccountingError, TenantQuotaError)
    with pytest.raises(RuntimeError):  # also a RuntimeError for re-raise
        raise QuotaAccountingError("x", reason="double-charge")


def test_usage_view_elides_idle_tenants():
    quotas = TenantQuotas()
    quotas.charge(encode_task_id(1, 1), 8)
    quotas.charge(encode_task_id(2, 1), 4)
    quotas.refund(encode_task_id(2, 1), 4)
    assert quotas.usage() == {1: 8}


# ---------------------------------------------------------------------------
# End to end
# ---------------------------------------------------------------------------
def test_tenants_share_the_switch_with_exact_isolation():
    service = AskService(AskConfig.small(), hosts=3)
    a = service.submit(
        {"h0": [(b"key", 1)] * 80}, receiver="h2", region_size=8, tenant_id=1
    )
    b = service.submit(
        {"h1": [(b"key", 9)] * 80}, receiver="h2", region_size=8, tenant_id=2
    )
    service.run_to_completion()
    assert tenant_of(a.task_id) == 1
    assert tenant_of(b.task_id) == 2
    assert a.result.values == {b"key": 80}
    assert b.result.values == {b"key": 720}


def test_switch_enforces_tenant_quota_end_to_end():
    service = AskService(AskConfig.small(), hosts=2)
    service.switch.controller.tenant_quotas.set(5, 8)
    ok = service.submit(
        {"h0": [(b"a", 1)] * 10}, receiver="h1", region_size=8, tenant_id=5
    )
    service.run_to_completion()
    assert ok.result is not None
    # The next region for tenant 5 exceeds its 8-aggregator quota.
    over = service.submit(
        {"h0": [(b"a", 1)] * 10}, receiver="h1", region_size=8, tenant_id=5
    )
    # The first task completed and refunded; so this one fits again —
    # verify the quota *would* reject concurrent over-use instead:
    service.run_to_completion()
    assert over.result is not None
    t1 = service.submit(
        {"h0": [(b"a", 1)] * 200}, receiver="h1", region_size=8, tenant_id=5
    )
    t2 = service.submit(
        {"h0": [(b"a", 1)] * 200}, receiver="h1", region_size=8, tenant_id=5
    )
    with pytest.raises(TenantQuotaError):
        service.run_to_completion()


def test_quota_released_at_teardown():
    service = AskService(AskConfig.small(), hosts=2)
    service.switch.controller.tenant_quotas.set(4, 8)
    for _ in range(3):  # sequential tasks fit one after another
        result = service.aggregate(
            {"h0": [(b"a", 1)] * 20}, receiver="h1", region_size=8
        )
        assert result[b"a"] == 20
