"""Chaos tests: many tasks, many tenants, racks, faults — all at once.

These are the closest thing to a production soak test the simulator can
run: every submitted task must complete with its exact reference result no
matter how the scenario mixes features.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AskConfig
from repro.core.multirack_service import MultiRackService
from repro.core.service import AskService
from repro.net.fault import FaultModel
from repro.workloads.stream import exact_aggregate, merge_results


def _expected(streams):
    return merge_results([exact_aggregate(s, 32) for s in streams.values()], 32)


def test_many_concurrent_tasks_single_rack():
    rng = random.Random(0)
    fault = FaultModel(loss_rate=0.05, duplicate_rate=0.05, reorder_rate=0.1, seed=1)
    service = AskService(
        AskConfig.small(swap_threshold_packets=8), hosts=6, fault=fault
    )
    submissions = []
    for t in range(10):
        senders = rng.sample(service.hosts, k=rng.randint(1, 3))
        receiver = rng.choice(service.hosts)
        streams = {
            s: [
                (("t%d-k%02d" % (t, rng.randint(0, 15))).encode(), rng.randint(1, 9))
                for _ in range(rng.randint(20, 120))
            ]
            for s in senders
        }
        task = service.submit(
            streams, receiver, region_size=2, tenant_id=t % 3
        )
        submissions.append((task, _expected(streams)))
    service.run_to_completion()
    for task, expected in submissions:
        assert task.result.values == expected, f"task {task.task_id} diverged"


def test_staggered_submissions_interleave_correctly():
    # Tasks submitted while earlier ones are mid-flight share channels and
    # switch memory; FIFO channel scheduling must keep them all exact.
    service = AskService(AskConfig.small(), hosts=3)
    first = service.submit({"h0": [(b"x", 1)] * 200}, "h2", region_size=4)
    service.run(until=service.sim.now + 50_000)  # let the first task start
    second = service.submit({"h0": [(b"x", 10)] * 200}, "h2", region_size=4)
    third = service.submit({"h1": [(b"y", 2)] * 100}, "h2", region_size=4)
    service.run_to_completion()
    assert first.result[b"x"] == 200
    assert second.result[b"x"] == 2000
    assert third.result[b"y"] == 200


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 10_000))
def test_multirack_chaos_property(seed):
    rng = random.Random(seed)
    fault = FaultModel(
        loss_rate=rng.uniform(0, 0.1),
        duplicate_rate=rng.uniform(0, 0.1),
        reorder_rate=rng.uniform(0, 0.15),
        seed=seed,
    )
    service = MultiRackService(
        AskConfig.small(swap_threshold_packets=16),
        racks={"r0": ["a", "b"], "r1": ["c", "d"]},
        fault=fault,
    )
    submissions = []
    for t in range(rng.randint(1, 4)):
        senders = rng.sample(service.hosts, k=rng.randint(1, 3))
        receiver = rng.choice(service.hosts)
        streams = {
            s: [
                (("k%02d" % rng.randint(0, 20)).encode(), rng.randint(1, 5))
                for _ in range(rng.randint(10, 80))
            ]
            for s in senders
        }
        submissions.append(
            (service.submit(streams, receiver, region_size=2), _expected(streams))
        )
    service.run_to_completion()
    for task, expected in submissions:
        assert task.result.values == expected
