"""Tests for the synthetic corpora and word synthesis."""

import random

import pytest

from repro.workloads.datasets import DATASETS, SyntheticCorpus, get_dataset
from repro.workloads.stream import distinct_keys, exact_aggregate, merge_results, split_round_robin, total_bytes
from repro.workloads.text import length_histogram, make_vocabulary, word_length_for_rank


def test_all_paper_datasets_exist():
    assert set(DATASETS) == {"yelp", "NG", "BAC", "LMDB"}


def test_unknown_dataset_rejected():
    with pytest.raises(KeyError):
        get_dataset("imagenet")


def test_vocabulary_is_deterministic():
    a = get_dataset("yelp", 500).vocabulary
    b = SyntheticCorpus(DATASETS["yelp"], 500).vocabulary
    assert a == b


def test_vocabulary_words_are_distinct():
    vocab = make_vocabulary(2000, seed=1)
    assert len(set(vocab)) == 2000


def test_hot_head_is_short():
    vocab = make_vocabulary(2000, seed=1)
    assert all(len(word) <= 4 for word in vocab[:100])


def test_tail_contains_medium_and_long_words():
    vocab = make_vocabulary(5000, seed=1)
    hist = length_histogram(vocab[1000:])
    assert any(5 <= length <= 8 for length in hist)
    assert any(length > 8 for length in hist)


def test_long_prob_controls_long_tail():
    few = make_vocabulary(4000, seed=1, long_prob=0.02)
    many = make_vocabulary(4000, seed=1, long_prob=0.4)
    assert sum(len(w) > 8 for w in many) > sum(len(w) > 8 for w in few)


def test_word_length_bounded():
    rng = random.Random(0)
    for rank in (0, 10, 1000, 100_000):
        for _ in range(50):
            assert 1 <= word_length_for_rank(rank, rng) <= 14


def test_stream_is_wordcount_shaped():
    stream = get_dataset("yelp", 1000).stream(500, seed=1)
    assert len(stream) == 500
    assert all(value == 1 for _, value in stream)


def test_stream_respects_vocabulary():
    corpus = get_dataset("NG", 300)
    vocab = set(corpus.vocabulary)
    assert all(key in vocab for key, _ in corpus.stream(400))


def test_stream_deterministic_per_seed():
    corpus = get_dataset("BAC", 400)
    assert corpus.stream(200, seed=5) == corpus.stream(200, seed=5)
    assert corpus.stream(200, seed=5) != corpus.stream(200, seed=6)


# ---------------------------------------------------------------------------
# stream utilities
# ---------------------------------------------------------------------------
def test_exact_aggregate():
    assert exact_aggregate([(b"a", 1), (b"a", 2), (b"b", 5)]) == {b"a": 3, b"b": 5}


def test_merge_results():
    merged = merge_results([{b"a": 1}, {b"a": 2, b"b": 1}])
    assert merged == {b"a": 3, b"b": 1}


def test_split_round_robin_preserves_multiset_and_order():
    stream = [(b"k%d" % i, i) for i in range(10)]
    parts = split_round_robin(stream, 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    assert sorted(sum(parts, [])) == sorted(stream)
    assert parts[0] == [stream[0], stream[3], stream[6], stream[9]]


def test_split_round_robin_validates_parts():
    with pytest.raises(ValueError):
        split_round_robin([], 0)


def test_distinct_keys_and_total_bytes():
    stream = [(b"ab", 1), (b"ab", 2), (b"cde", 3)]
    assert distinct_keys(stream) == 2
    assert total_bytes(stream) == (2 + 4) * 2 + (3 + 4)
