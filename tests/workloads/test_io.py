"""Tests for trace persistence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.io import (
    TraceFormatError,
    dump_stream,
    dumps_stream,
    iter_stream,
    load_stream,
    loads_stream,
)


def test_file_roundtrip(tmp_path):
    stream = [(b"cat", 1), (b"dog", -2), (b"\x00\ttab\n", 3)]
    path = tmp_path / "trace.tsv"
    assert dump_stream(stream, path) == 3
    assert load_stream(path) == stream


def test_iter_stream_is_lazy_and_equal(tmp_path):
    stream = [(b"k%d" % i, i) for i in range(100)]
    path = tmp_path / "trace.tsv"
    dump_stream(stream, path)
    iterator = iter_stream(path)
    assert next(iterator) == (b"k0", 0)
    assert list(iterator) == stream[1:]


def test_blank_lines_ignored():
    assert loads_stream("\n" + dumps_stream([(b"a", 1)]) + "\n\n") == [(b"a", 1)]


def test_bad_hex_rejected():
    with pytest.raises(TraceFormatError, match="bad hex"):
        loads_stream("zz\t1")


def test_bad_value_rejected():
    with pytest.raises(TraceFormatError, match="bad value"):
        loads_stream("61\tnotanumber")


def test_missing_tab_rejected():
    with pytest.raises(TraceFormatError, match="expected"):
        loads_stream("6161")


@given(
    st.lists(
        st.tuples(st.binary(min_size=0, max_size=20), st.integers(-(2**40), 2**40)),
        max_size=50,
    )
)
def test_string_roundtrip_property(stream):
    assert loads_stream(dumps_stream(stream)) == stream


def test_corpus_traces_replay_through_the_service(tmp_path):
    from repro.core.config import AskConfig
    from repro.core.service import AskService
    from repro.workloads.datasets import get_dataset

    stream = get_dataset("yelp", 500).stream(400, seed=1)
    path = tmp_path / "yelp.tsv"
    dump_stream(stream, path)
    replayed = load_stream(path)
    service = AskService(AskConfig.small(), hosts=2)
    result = service.aggregate({"h0": replayed}, receiver="h1", check=True)
    assert result.stats.input_tuples == 400
