"""Tests for the uniform/Zipf stream generators."""

import numpy as np
import pytest

from repro.workloads.generators import uniform_stream, zipf_counts, zipf_stream


def test_zipf_counts_sum_exactly():
    counts = zipf_counts(10_000, 100, alpha=1.0)
    assert counts.sum() == 10_000


def test_zipf_counts_monotone_nonincreasing():
    counts = zipf_counts(10_000, 100, alpha=1.0)
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_zipf_counts_follow_inverse_rank_law():
    counts = zipf_counts(1_000_000, 1000, alpha=1.0)
    # counts[0]/counts[9] ~ 10 under 1/r.
    assert counts[0] / counts[9] == pytest.approx(10, rel=0.05)


def test_higher_alpha_is_more_skewed():
    mild = zipf_counts(100_000, 1000, alpha=0.5)
    steep = zipf_counts(100_000, 1000, alpha=1.5)
    assert steep[0] > mild[0]


def test_zipf_stream_hot_first_order():
    stream = zipf_stream(1000, 50, alpha=1.0, order="zipf")
    ranks = [int.from_bytes(k, "little") for k, _ in stream]
    assert ranks == sorted(ranks)


def test_zipf_stream_reverse_order():
    stream = zipf_stream(1000, 50, alpha=1.0, order="zipf_reverse")
    ranks = [int.from_bytes(k, "little") for k, _ in stream]
    assert ranks == sorted(ranks, reverse=True)


def test_shuffled_order_is_seed_deterministic():
    a = zipf_stream(500, 50, order="shuffled", seed=3)
    b = zipf_stream(500, 50, order="shuffled", seed=3)
    c = zipf_stream(500, 50, order="shuffled", seed=4)
    assert a == b
    assert a != c


def test_orders_contain_the_same_multiset():
    hot = zipf_stream(700, 40, order="zipf")
    rev = zipf_stream(700, 40, order="zipf_reverse")
    mix = zipf_stream(700, 40, order="shuffled", seed=1)
    assert sorted(hot) == sorted(rev) == sorted(mix)


def test_unknown_order_rejected():
    with pytest.raises(ValueError):
        zipf_stream(10, 5, order="sideways")  # type: ignore[arg-type]


def test_custom_key_fn():
    stream = zipf_stream(10, 3, key_fn=lambda r: b"word%d" % r)
    assert all(k.startswith(b"word") for k, _ in stream)


def test_uniform_stream_covers_key_space():
    stream = uniform_stream(5000, 10, seed=1)
    ranks = {int.from_bytes(k, "little") for k, _ in stream}
    assert ranks == set(range(10))


def test_uniform_stream_roughly_balanced():
    stream = uniform_stream(10_000, 10, seed=2)
    counts = np.zeros(10)
    for k, _ in stream:
        counts[int.from_bytes(k, "little")] += 1
    assert counts.min() > 800 and counts.max() < 1200


def test_invalid_parameters():
    with pytest.raises(ValueError):
        zipf_counts(10, 0, alpha=1.0)
