"""Regenerates Fig. 10: WordCount JCT — ASK vs Spark/SparkSHM/SparkRDMA.

3 machines × 32 mappers/reducers, 5–20 × 10^7 tuples per mapper.  Paper:
ASK reduces JCT by 67.3–75.1 % against every baseline at every size; the
Spark variants differ only marginally from each other.

The JCTs come from the calibrated cost model; a scaled-down functional run
cross-checks that every backend computes the identical aggregate.
"""

from repro.experiments import fig10_jct


def test_fig10_jct(benchmark, report):
    result = benchmark.pedantic(fig10_jct.run, iterations=1, rounds=3)
    report("fig10_jct", fig10_jct.format_report(result))
    low, high = result.reduction_range()
    assert 0.65 <= low <= high <= 0.78


def test_fig10_functional_crosscheck(benchmark, report):
    reports = benchmark.pedantic(
        fig10_jct.run_functional,
        kwargs={"tuples_per_mapper": 400, "distinct_keys": 128},
        iterations=1,
        rounds=1,
    )
    results = [r.result for r in reports.values()]
    assert all(r == results[0] for r in results)
    ask = reports["ask"]
    report(
        "fig10_functional",
        "Functional WordCount cross-check: all four backends agree on "
        f"{len(results[0])} keys; ASK aggregated "
        f"{ask.switch_aggregation_ratio * 100:.1f}% of tuples on the switch.",
    )
