"""Regenerates Fig. 8: multi-key vectorization effectiveness.

(a) goodput vs tuples/packet against the ideal 8x/(8x+78)·100 law, with the
PCIe glitches at 18 and 26; (b) the non-blank-tuples-per-packet CDF for the
uniform reference and the four datasets (paper: yelp worst at ≈16.91).
"""

from repro.experiments import fig08_multikey


def test_fig08_multikey(benchmark, report):
    result = benchmark.pedantic(
        fig08_multikey.run, kwargs={"tuples_per_dataset": 60_000}, iterations=1, rounds=1
    )
    report("fig08_multikey", fig08_multikey.format_report(result))
    fig8a, fig8b = result
    assert fig8a.glitch_depth(18) > 0 and fig8a.glitch_depth(26) > 0
    assert abs(fig8a.measured.y_at(32) - 73.96) < 1.0
    assert abs(fig8b.mean_occupancy("yelp") - 16.91) < 1.0
    assert fig8b.mean_occupancy("Uniform") > 29
