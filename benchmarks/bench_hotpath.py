#!/usr/bin/env python
"""Hot-path benchmark and determinism guard.

Runs one lossy multi-host aggregation (loss + duplication + reordering +
retransmission churn — the workload that made the seed's O(W) per-packet
scans visible) three times in one process:

1. optimized fast path (the code as checked in),
2. optimized again — same seed must reproduce the identical schedule,
3. seed baseline via :func:`repro.transport.reference.reference_mode`,
   which swaps the pre-PR implementations back in,
4. the vectorized SoA backend (``switch_factory=VectorizedAskSwitch``),
   whose fingerprint must be byte-identical to run 1 on EVERY field —
   ``values_sha256``, drop/dedup counters, ``events_processed``, the
   final clock.  The simulator's flush-on-foreign batching keeps heap
   push order exact, so no field is excluded.

It also times the switch data plane in isolation (``data_plane``
section): synthetic wide batches through the scalar compiled program and
the SoA batch engine, reporting both in packets/sec plus the ratio
against the floor recorded by the previous run's history entry.

It measures simulator events/sec and transmitted packets/sec, then enforces
the determinism contract: all three scalar runs must agree on the final
``sim.now``, ``events_processed``, retransmission count, per-host packet
counts, receive-window accept/duplicate totals and the aggregated values
themselves (which must also equal the exact :func:`reference_aggregate`
answer).  Any mismatch — including a vectorized-vs-scalar divergence —
exits non-zero; an optimization that changes a single decision fails the
build, however much faster it is.

Results land in ``BENCH_hotpath.json`` (repo root by default).  The file
keeps a ``history`` list — one speedup-trajectory entry per recorded run,
appended, never overwritten — so BENCH_* files track the perf trajectory
across PRs.  ``--smoke`` shrinks the workload for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke] [-o FILE]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AskConfig, AskService, FaultModel  # noqa: E402
from repro.core.results import reference_aggregate  # noqa: E402
from repro.switch.vectorized import VectorizedAskSwitch  # noqa: E402
from repro.transport.reference import reference_mode  # noqa: E402

#: The benchmark scenario.  Fixed so numbers are comparable across runs and
#: machines; change it only together with the checked-in baseline JSON.
FULL = dict(
    hosts=4, tuples_per_sender=20_000, window=256, num_keys=512, seed=7,
    dp_batches=40,
)
SMOKE = dict(
    hosts=3, tuples_per_sender=2_000, window=64, num_keys=128, seed=7,
    dp_batches=8,
)

#: Data-plane microbench shape: wide same-instant batches, one tuple per
#: packet, distinct channels so the vector sweep engages fully.
DP_LANES = 256
DP_WARMUP = 5


def build_streams(params: dict) -> dict[str, list[tuple[bytes, int]]]:
    rng = random.Random(params["seed"])
    keys = [("k%03d" % i).encode() for i in range(params["num_keys"])]
    return {
        f"h{i}": [
            (rng.choice(keys), rng.randint(1, 99))
            for _ in range(params["tuples_per_sender"])
        ]
        for i in range(params["hosts"] - 1)
    }


def run_scenario(params: dict, switch_factory=None) -> dict:
    """One full aggregation; returns timing plus the decision fingerprint."""
    config = AskConfig.small(
        window_size=params["window"], retransmit_timeout_us=50.0
    )
    fault = FaultModel(
        loss_rate=0.05,
        duplicate_rate=0.03,
        reorder_rate=0.10,
        max_extra_delay_ns=200_000,
        seed=params["seed"],
    )
    kwargs = {"switch_factory": switch_factory} if switch_factory is not None else {}
    service = AskService(config, hosts=params["hosts"], fault=fault, **kwargs)
    streams = build_streams(params)
    receiver = f"h{params['hosts'] - 1}"

    wall_start = time.perf_counter()
    result = service.aggregate(streams, receiver=receiver)
    wall = time.perf_counter() - wall_start

    expected = reference_aggregate(streams, config.value_mask)
    if dict(result.items()) != expected:
        raise AssertionError("aggregated values diverge from the exact answer")

    packets = sum(d.sender_packets() for d in service.daemons.values())
    accepted, duplicates = service.daemons[receiver].receiver_packets()
    values_digest = hashlib.sha256(
        repr(sorted(result.items())).encode()
    ).hexdigest()
    events = service.sim.events_processed
    return {
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
        "packets_per_sec": round(packets / wall, 1),
        "fingerprint": {
            "events_processed": events,
            "final_now_ns": service.sim.now,
            "retransmissions": result.stats.retransmissions,
            "data_packets_sent": result.stats.data_packets_sent,
            "packets_received": result.stats.packets_received,
            "duplicates_dropped": result.stats.duplicate_packets_dropped,
            "sender_packets_total": packets,
            "recv_window_accepted": accepted,
            "recv_window_duplicates": duplicates,
            "values_sha256": values_digest,
        },
    }


def _build_synthetic_batches(config, params: dict) -> list[list]:
    from repro.core.packer import pack_stream
    from repro.core.packet import AskPacket, PacketFlag

    rng = random.Random(params["seed"])
    keys = [("k%03d" % i).encode() for i in range(params["num_keys"])]
    batches = []
    for seq in range(DP_WARMUP + params["dp_batches"]):
        packets = []
        for lane in range(DP_LANES):
            payloads, _ = pack_stream(
                [(rng.choice(keys), rng.randint(1, 99))], config
            )
            payload = payloads[0]
            flags = PacketFlag.DATA | (
                PacketFlag.LONG if payload.is_long else PacketFlag(0)
            )
            packets.append(
                AskPacket(
                    flags=flags,
                    task_id=1,
                    src=f"h{lane}",
                    dst="h1",
                    channel_index=0,
                    seq=seq,
                    bitmap=payload.bitmap,
                    slots=payload.slots,
                )
            )
        batches.append(packets)
    return batches


def bench_data_plane(params: dict) -> dict:
    """The switch data plane in isolation: scalar compiled program vs the
    SoA batch engine over identical wide batches — no links, no
    retransmission machinery, just dedup + aggregation + window
    accounting.  Distinct channels per lane keep every lane in the vector
    sweep, so this is the engine's best case."""
    from repro.net.simulator import Simulator
    from repro.switch.switch import AskSwitch

    config = AskConfig.small(window_size=params["window"])
    batches = _build_synthetic_batches(config, params)
    warm, timed = batches[:DP_WARMUP], batches[DP_WARMUP:]
    packets = sum(len(batch) for batch in timed)

    scalar = AskSwitch(config, Simulator(), max_tasks=4, max_channels=2 * DP_LANES)
    scalar.controller.allocate_region(1, size=32)
    for batch in warm:
        for pkt in batch:
            scalar.program.process(scalar.pipeline.begin_pass(), pkt)
    start = time.perf_counter()
    for batch in timed:
        for pkt in batch:
            scalar.program.process(scalar.pipeline.begin_pass(), pkt)
    scalar_pps = packets / (time.perf_counter() - start)

    vector = VectorizedAskSwitch(
        config, Simulator(), max_tasks=4, max_channels=2 * DP_LANES
    )
    vector.controller.allocate_region(1, size=32)
    for batch in warm:
        vector.program.process_batch(batch)
    start = time.perf_counter()
    for batch in timed:
        vector.program.process_batch(batch)
    vector_pps = packets / (time.perf_counter() - start)

    return {
        "lanes_per_batch": DP_LANES,
        "timed_batches": len(timed),
        "scalar_packets_per_sec": round(scalar_pps, 1),
        "vector_packets_per_sec": round(vector_pps, 1),
        "vector_vs_scalar": round(vector_pps / scalar_pps, 3),
    }


def load_history(path: Path) -> list[dict]:
    """Prior speedup-trajectory entries recorded in ``path``.

    Each written report carries its own entry as ``history[-1]``, so the
    next run simply extends the list.  A report from before the history
    field existed contributes one synthesized entry from its headline
    numbers; anything unreadable contributes nothing.
    """
    try:
        previous = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(previous, dict) or previous.get("benchmark") != "hotpath":
        return []
    history = previous.get("history")
    if isinstance(history, list):
        return list(history)
    try:
        return [
            {
                "mode": previous["mode"],
                "python": previous["python"],
                "packets_per_sec": previous["optimized"]["packets_per_sec"],
                "reference_packets_per_sec": previous["reference"][
                    "packets_per_sec"
                ],
                "speedup_packets_per_sec": previous["speedup"]["packets_per_sec"],
                "speedup_events_per_sec": previous["speedup"]["events_per_sec"],
            }
        ]
    except KeyError:
        return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small workload for CI"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if not args.output.parent.is_dir():
        parser.error(f"output directory does not exist: {args.output.parent}")
    params = SMOKE if args.smoke else FULL

    print(f"scenario: {params}")
    optimized = run_scenario(params)
    print(
        f"optimized : {optimized['wall_seconds']:8.3f}s  "
        f"{optimized['events_per_sec']:>10,.0f} ev/s  "
        f"{optimized['packets_per_sec']:>9,.0f} pkt/s"
    )
    repeat = run_scenario(params)
    print(
        f"repeat    : {repeat['wall_seconds']:8.3f}s  "
        f"{repeat['events_per_sec']:>10,.0f} ev/s  "
        f"{repeat['packets_per_sec']:>9,.0f} pkt/s"
    )
    with reference_mode():
        reference = run_scenario(params)
    print(
        f"reference : {reference['wall_seconds']:8.3f}s  "
        f"{reference['events_per_sec']:>10,.0f} ev/s  "
        f"{reference['packets_per_sec']:>9,.0f} pkt/s"
    )
    vectorized = run_scenario(params, switch_factory=VectorizedAskSwitch)
    print(
        f"vectorized: {vectorized['wall_seconds']:8.3f}s  "
        f"{vectorized['events_per_sec']:>10,.0f} ev/s  "
        f"{vectorized['packets_per_sec']:>9,.0f} pkt/s"
    )
    data_plane = bench_data_plane(params)
    print(
        f"data plane: scalar {data_plane['scalar_packets_per_sec']:>9,.0f} pkt/s  "
        f"vector {data_plane['vector_packets_per_sec']:>9,.0f} pkt/s  "
        f"({data_plane['vector_vs_scalar']}x)"
    )

    repeat_identical = optimized["fingerprint"] == repeat["fingerprint"]
    reference_identical = optimized["fingerprint"] == reference["fingerprint"]
    vectorized_identical = optimized["fingerprint"] == vectorized["fingerprint"]
    speedup_events = round(
        optimized["events_per_sec"] / reference["events_per_sec"], 3
    )
    speedup_packets = round(
        optimized["packets_per_sec"] / reference["packets_per_sec"], 3
    )

    report = {
        "benchmark": "hotpath",
        "mode": "smoke" if args.smoke else "full",
        "scenario": params,
        "python": platform.python_version(),
        "optimized": optimized,
        "optimized_repeat": repeat,
        "reference": reference,
        "vectorized": vectorized,
        "data_plane": data_plane,
        "speedup": {
            "events_per_sec": speedup_events,
            "packets_per_sec": speedup_packets,
        },
        "determinism": {
            "repeat_identical": repeat_identical,
            "reference_identical": reference_identical,
            "vectorized_identical": vectorized_identical,
        },
    }
    history = load_history(args.output)
    floor = history[-1]["packets_per_sec"] if history else None
    data_plane["floor_packets_per_sec"] = floor
    if floor:
        data_plane["vector_vs_floor"] = round(
            data_plane["vector_packets_per_sec"] / floor, 3
        )
    report["history"] = history + [
        {
            "mode": report["mode"],
            "python": report["python"],
            "packets_per_sec": optimized["packets_per_sec"],
            "reference_packets_per_sec": reference["packets_per_sec"],
            "speedup_packets_per_sec": speedup_packets,
            "speedup_events_per_sec": speedup_events,
            "vectorized_packets_per_sec": vectorized["packets_per_sec"],
            "data_plane_scalar_packets_per_sec": data_plane[
                "scalar_packets_per_sec"
            ],
            "data_plane_vector_packets_per_sec": data_plane[
                "vector_packets_per_sec"
            ],
            "data_plane_vector_vs_floor": data_plane.get("vector_vs_floor"),
        }
    ]
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"speedup: {speedup_packets}x pkt/s, {speedup_events}x ev/s")
    print(f"report: {args.output}")

    if not repeat_identical:
        print("FAIL: same seed, different schedule across repeated runs",
              file=sys.stderr)
        return 2
    if not reference_identical:
        print("FAIL: optimized fast path diverges from the seed reference",
              file=sys.stderr)
        return 2
    if not vectorized_identical:
        for key in optimized["fingerprint"]:
            a = optimized["fingerprint"][key]
            b = vectorized["fingerprint"][key]
            if a != b:
                print(f"  {key}: scalar={a} vectorized={b}", file=sys.stderr)
        print("FAIL: vectorized backend diverges from the scalar oracle",
              file=sys.stderr)
        return 2
    print("determinism guard: OK (4 runs, identical fingerprints)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
