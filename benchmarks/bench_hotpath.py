#!/usr/bin/env python
"""Hot-path benchmark and determinism guard.

Runs one lossy multi-host aggregation (loss + duplication + reordering +
retransmission churn — the workload that made the seed's O(W) per-packet
scans visible) three times in one process:

1. optimized fast path (the code as checked in),
2. optimized again — same seed must reproduce the identical schedule,
3. seed baseline via :func:`repro.transport.reference.reference_mode`,
   which swaps the pre-PR implementations back in,
4. the vectorized SoA backend (``switch_factory=VectorizedAskSwitch``),
   whose fingerprint must be byte-identical to run 1 on EVERY field —
   ``values_sha256``, drop/dedup counters, ``events_processed``, the
   final clock.  The simulator's flush-on-foreign batching keeps heap
   push order exact, so no field is excluded.

It also times the switch data plane in isolation (``data_plane``
section): synthetic wide batches through the scalar compiled program and
the SoA batch engine, reporting both in packets/sec plus the ratio
against the floor recorded by the previous run's history entry.

The ``sharded`` section runs first (before the other legs heat the
machine — its absolute rate is what check_regression.py gates): one
16-rack spine–leaf scenario executed by the serial oracle and by the
rack-sharded conservative PDES backend, best-of-2 timed.  Both
fingerprints must be byte-identical on every run, and the leg's
``packets_per_sec`` counts fabric packet-hops (every per-link
``packets_sent``) per second of sharded wall time.

It measures simulator events/sec and transmitted packets/sec, then enforces
the determinism contract: all three scalar runs must agree on the final
``sim.now``, ``events_processed``, retransmission count, per-host packet
counts, receive-window accept/duplicate totals and the aggregated values
themselves (which must also equal the exact :func:`reference_aggregate`
answer).  Any mismatch — including a vectorized-vs-scalar divergence —
exits non-zero; an optimization that changes a single decision fails the
build, however much faster it is.

Results land in ``BENCH_hotpath.json`` (repo root by default).  The file
keeps a ``history`` list — one speedup-trajectory entry per recorded run,
appended, never overwritten — so BENCH_* files track the perf trajectory
across PRs.  ``--smoke`` shrinks the workload for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke] [-o FILE]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AskConfig, AskService, FaultModel  # noqa: E402
from repro.core.results import reference_aggregate  # noqa: E402
from repro.switch.vectorized import VectorizedAskSwitch  # noqa: E402
from repro.transport.reference import reference_mode  # noqa: E402

#: The benchmark scenario.  Fixed so numbers are comparable across runs and
#: machines; change it only together with the checked-in baseline JSON.
FULL = dict(
    hosts=4, tuples_per_sender=20_000, window=256, num_keys=512, seed=7,
    dp_batches=40,
    sharded_racks=16, sharded_shards=4, sharded_tuples=8_000,
)
SMOKE = dict(
    hosts=3, tuples_per_sender=2_000, window=64, num_keys=128, seed=7,
    dp_batches=8,
    sharded_racks=4, sharded_shards=2, sharded_tuples=400,
)

#: Data-plane microbench shape: wide same-instant batches, one tuple per
#: packet, distinct channels so the vector sweep engages fully.
DP_LANES = 256
DP_WARMUP = 5


def build_streams(params: dict) -> dict[str, list[tuple[bytes, int]]]:
    rng = random.Random(params["seed"])
    keys = [("k%03d" % i).encode() for i in range(params["num_keys"])]
    return {
        f"h{i}": [
            (rng.choice(keys), rng.randint(1, 99))
            for _ in range(params["tuples_per_sender"])
        ]
        for i in range(params["hosts"] - 1)
    }


def run_scenario(params: dict, switch_factory=None) -> dict:
    """One full aggregation; returns timing plus the decision fingerprint."""
    config = AskConfig.small(
        window_size=params["window"], retransmit_timeout_us=50.0
    )
    fault = FaultModel(
        loss_rate=0.05,
        duplicate_rate=0.03,
        reorder_rate=0.10,
        max_extra_delay_ns=200_000,
        seed=params["seed"],
    )
    kwargs = {"switch_factory": switch_factory} if switch_factory is not None else {}
    service = AskService(config, hosts=params["hosts"], fault=fault, **kwargs)
    streams = build_streams(params)
    receiver = f"h{params['hosts'] - 1}"

    wall_start = time.perf_counter()
    result = service.aggregate(streams, receiver=receiver)
    wall = time.perf_counter() - wall_start

    expected = reference_aggregate(streams, config.value_mask)
    if dict(result.items()) != expected:
        raise AssertionError("aggregated values diverge from the exact answer")

    packets = sum(d.sender_packets() for d in service.daemons.values())
    accepted, duplicates = service.daemons[receiver].receiver_packets()
    values_digest = hashlib.sha256(
        repr(sorted(result.items())).encode()
    ).hexdigest()
    events = service.sim.events_processed
    return {
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
        "packets_per_sec": round(packets / wall, 1),
        "fingerprint": {
            "events_processed": events,
            "final_now_ns": service.sim.now,
            "retransmissions": result.stats.retransmissions,
            "data_packets_sent": result.stats.data_packets_sent,
            "packets_received": result.stats.packets_received,
            "duplicates_dropped": result.stats.duplicate_packets_dropped,
            "sender_packets_total": packets,
            "recv_window_accepted": accepted,
            "recv_window_duplicates": duplicates,
            "values_sha256": values_digest,
        },
    }


def _sharded_case(params: dict):
    """The sharded full-scenario leg: a fig13-scale spine–leaf fabric
    (``sharded_racks`` single-rack pods), cut into ``sharded_shards``
    rack shards with spines spread round-robin so every shard's
    aggregation traffic transits spines owned by *other* shards.  One
    task per shard fans all of the shard's racks into its last rack, so
    the load is balanced and every up/core/down link class crosses the
    cut."""
    from repro.runtime.sharded import ShardedScenario, ShardedTask, make_plan

    racks = params["sharded_racks"]
    shards = params["sharded_shards"]
    rng = random.Random(params["seed"])
    keys = [("k%03d" % i).encode() for i in range(params["num_keys"])]
    pods = {
        f"p{i}": {f"r{i}": (f"h{2 * i}", f"h{2 * i + 1}")} for i in range(racks)
    }

    def stream():
        return tuple(
            (rng.choice(keys), rng.randint(1, 99))
            for _ in range(params["sharded_tuples"])
        )

    per_shard = racks // shards
    tasks = []
    for k in range(shards):
        shard_racks = range(k * per_shard, (k + 1) * per_shard)
        senders = {f"h{2 * r}": stream() for r in shard_racks}
        receiver = f"h{2 * max(shard_racks) + 1}"
        tasks.append(
            ShardedTask(streams=senders, receiver=receiver, region_size=8)
        )
    scenario = ShardedScenario(
        config=AskConfig.small(
            window_size=params["window"], retransmit_timeout_us=400.0
        ),
        pods=pods,
        placement="leaf",
        tasks=tuple(tasks),
        fault={
            "loss_rate": 0.02,
            "duplicate_rate": 0.01,
            "reorder_rate": 0.05,
            "max_extra_delay_ns": 50_000,
            "seed": params["seed"],
        },
        core_latency_ns=50_000,
    )
    return scenario, make_plan(scenario, shards, spread_spines=True)


def run_sharded_scenario(params: dict) -> dict:
    """Serial and rack-sharded runs of the same giant scenario.

    The sharded run is the throughput number; the serial run is the
    oracle — both fingerprints must be byte-identical, and every task's
    values digest must equal the exact host-side reference.

    Execution mode is chosen the way ``repro sim-sharded`` chooses it:
    one forked worker per shard when the runner exposes more than one
    CPU, the in-process round-robin scheduler otherwise (forking four
    interpreters onto one core only adds contention).  The recorded
    ``cpus``/``execution`` fields let ``check_regression.py`` arm the
    parallel-speedup gate only where parallel hardware exists.

    ``packets_per_sec`` counts *fabric packet-hops*: every packet
    traversal of every link (host uplinks/downlinks, rack-to-spine,
    spine core mesh) in the 16-rack fabric, summed from the per-link
    ``packets_sent`` counters the fingerprint already carries.  That is
    the multi-rack analogue of the single-switch legs' packets/s — the
    event-loop work the simulator performs per second — and is the
    number the sharded cut is supposed to multiply."""
    from repro.perf.parallel import default_workers
    from repro.runtime.sharded import run_serial, run_sharded

    scenario, plan = _sharded_case(params)
    cpus = default_workers()
    use_processes = cpus > 1

    wall_start = time.perf_counter()
    serial_fp = run_serial(scenario, plan)
    serial_wall = time.perf_counter() - wall_start

    # Best-of-2 for the timed number: wall-clock on shared/burst-credit
    # runners swings far more between runs than the code's own cost does,
    # and the minimum is the least-contended estimate (pyperf's rule).
    # Identity is checked on EVERY run — a nondeterministic schedule
    # cannot hide behind the faster timing.
    sharded_walls = []
    identical = True
    for _ in range(2):
        wall_start = time.perf_counter()
        sharded_fp, stats = run_sharded(scenario, plan, processes=use_processes)
        sharded_walls.append(time.perf_counter() - wall_start)
        identical = identical and serial_fp == sharded_fp
    sharded_wall = min(sharded_walls)

    for index, task in enumerate(scenario.tasks):
        expected = reference_aggregate(
            {h: list(s) for h, s in task.streams.items()},
            scenario.config.value_mask,
        )
        expected_digest = hashlib.sha256(
            repr(sorted(expected.items())).encode()
        ).hexdigest()
        if serial_fp["tasks"][index]["values_sha256"] != expected_digest:
            raise AssertionError(
                f"sharded-leg task {index} diverges from the exact answer"
            )

    host_packets = sum(host[0] for host in serial_fp["hosts"].values())
    fabric_hops = sum(counters[0] for counters in serial_fp["links"].values())
    events = serial_fp["events_processed"]
    return {
        "racks": params["sharded_racks"],
        "shards": stats.shards,
        "windows": stats.windows,
        "cross_shard_messages": stats.messages,
        "lookahead_ns": stats.lookahead_ns,
        "cpus": cpus,
        "execution": "fork" if use_processes else "inproc",
        "fabric_links": len(serial_fp["links"]),
        "fabric_packet_hops": fabric_hops,
        "host_packets": host_packets,
        "serial_wall_seconds": round(serial_wall, 4),
        "sharded_wall_seconds": round(sharded_wall, 4),
        "sharded_walls_seconds": [round(w, 4) for w in sharded_walls],
        "serial_packets_per_sec": round(fabric_hops / serial_wall, 1),
        "packets_per_sec": round(fabric_hops / sharded_wall, 1),
        "host_packets_per_sec": round(host_packets / sharded_wall, 1),
        "events_per_sec": round(events / sharded_wall, 1),
        "sharded_vs_serial": round(serial_wall / sharded_wall, 3),
        "identical": identical,
    }


def _build_synthetic_batches(config, params: dict) -> list[list]:
    from repro.core.packer import pack_stream
    from repro.core.packet import AskPacket, PacketFlag

    rng = random.Random(params["seed"])
    keys = [("k%03d" % i).encode() for i in range(params["num_keys"])]
    batches = []
    # Warmup plus TWO disjoint timed sets: repetitions must carry fresh
    # sequence numbers, or the second rep measures the duplicate-drop
    # path instead of aggregation.
    for seq in range(DP_WARMUP + 2 * params["dp_batches"]):
        packets = []
        for lane in range(DP_LANES):
            payloads, _ = pack_stream(
                [(rng.choice(keys), rng.randint(1, 99))], config
            )
            payload = payloads[0]
            flags = PacketFlag.DATA | (
                PacketFlag.LONG if payload.is_long else PacketFlag(0)
            )
            packets.append(
                AskPacket(
                    flags=flags,
                    task_id=1,
                    src=f"h{lane}",
                    dst="h1",
                    channel_index=0,
                    seq=seq,
                    bitmap=payload.bitmap,
                    slots=payload.slots,
                )
            )
        batches.append(packets)
    return batches


def bench_data_plane(params: dict) -> dict:
    """The switch data plane in isolation: scalar compiled program vs the
    SoA batch engine over identical wide batches — no links, no
    retransmission machinery, just dedup + aggregation + window
    accounting.  Distinct channels per lane keep every lane in the vector
    sweep, so this is the engine's best case."""
    from repro.net.simulator import Simulator
    from repro.switch.switch import AskSwitch

    config = AskConfig.small(window_size=params["window"])
    batches = _build_synthetic_batches(config, params)
    count = params["dp_batches"]
    warm = batches[:DP_WARMUP]
    timed_a = batches[DP_WARMUP : DP_WARMUP + count]
    timed_b = batches[DP_WARMUP + count :]
    packets = sum(len(batch) for batch in timed_a)

    scalar = AskSwitch(config, Simulator(), max_tasks=4, max_channels=2 * DP_LANES)
    scalar.controller.allocate_region(1, size=32)
    for batch in warm:
        for pkt in batch:
            scalar.program.process(scalar.pipeline.begin_pass(), pkt)

    vector = VectorizedAskSwitch(
        config, Simulator(), max_tasks=4, max_channels=2 * DP_LANES
    )
    vector.controller.allocate_region(1, size=32)
    for batch in warm:
        vector.program.process_batch(batch)

    def time_scalar(timed) -> float:
        start = time.perf_counter()
        for batch in timed:
            for pkt in batch:
                scalar.program.process(scalar.pipeline.begin_pass(), pkt)
        return time.perf_counter() - start

    def time_vector(timed) -> float:
        start = time.perf_counter()
        for batch in timed:
            vector.program.process_batch(batch)
        return time.perf_counter() - start

    # ABBA order, best-of-2 each: the vector/scalar ratio is the gated
    # number, and a machine that slows down mid-leg (burst credits,
    # thermal) must not bias whichever engine happened to run second.
    # Each rep consumes its own disjoint timed set — fresh seqs, so both
    # reps measure aggregation, not dedup drops.
    scalar_walls = [time_scalar(timed_a)]
    vector_walls = [time_vector(timed_a), time_vector(timed_b)]
    scalar_walls.append(time_scalar(timed_b))
    scalar_pps = packets / min(scalar_walls)
    vector_pps = packets / min(vector_walls)

    return {
        "lanes_per_batch": DP_LANES,
        "timed_batches": len(timed_a),
        "scalar_packets_per_sec": round(scalar_pps, 1),
        "vector_packets_per_sec": round(vector_pps, 1),
        "vector_vs_scalar": round(vector_pps / scalar_pps, 3),
    }


def load_history(path: Path) -> list[dict]:
    """Prior speedup-trajectory entries recorded in ``path``.

    Each written report carries its own entry as ``history[-1]``, so the
    next run simply extends the list.  A report from before the history
    field existed contributes one synthesized entry from its headline
    numbers; anything unreadable contributes nothing.
    """
    try:
        previous = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(previous, dict) or previous.get("benchmark") != "hotpath":
        return []
    history = previous.get("history")
    if isinstance(history, list):
        return list(history)
    try:
        return [
            {
                "mode": previous["mode"],
                "python": previous["python"],
                "packets_per_sec": previous["optimized"]["packets_per_sec"],
                "reference_packets_per_sec": previous["reference"][
                    "packets_per_sec"
                ],
                "speedup_packets_per_sec": previous["speedup"]["packets_per_sec"],
                "speedup_events_per_sec": previous["speedup"]["events_per_sec"],
            }
        ]
    except KeyError:
        return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small workload for CI"
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if not args.output.parent.is_dir():
        parser.error(f"output directory does not exist: {args.output.parent}")
    params = SMOKE if args.smoke else FULL

    print(f"scenario: {params}")
    # The sharded leg runs first: its absolute packets/s is gated by
    # check_regression.py, and on burst-credit/thermally-throttled
    # runners a leg measured after a minute of sustained load reads up
    # to ~30% slower than the same code from idle.  The other legs are
    # gated on ratios, which cancel machine state.
    sharded = run_sharded_scenario(params)
    print(
        f"sharded   : {sharded['sharded_wall_seconds']:8.3f}s  "
        f"{sharded['events_per_sec']:>10,.0f} ev/s  "
        f"{sharded['packets_per_sec']:>9,.0f} pkt/s  "
        f"({sharded['shards']} shards, {sharded['execution']} on "
        f"{sharded['cpus']} cpu, {sharded['sharded_vs_serial']}x vs "
        f"serial {sharded['serial_wall_seconds']:.3f}s)"
    )
    optimized = run_scenario(params)
    print(
        f"optimized : {optimized['wall_seconds']:8.3f}s  "
        f"{optimized['events_per_sec']:>10,.0f} ev/s  "
        f"{optimized['packets_per_sec']:>9,.0f} pkt/s"
    )
    repeat = run_scenario(params)
    print(
        f"repeat    : {repeat['wall_seconds']:8.3f}s  "
        f"{repeat['events_per_sec']:>10,.0f} ev/s  "
        f"{repeat['packets_per_sec']:>9,.0f} pkt/s"
    )
    with reference_mode():
        reference = run_scenario(params)
    print(
        f"reference : {reference['wall_seconds']:8.3f}s  "
        f"{reference['events_per_sec']:>10,.0f} ev/s  "
        f"{reference['packets_per_sec']:>9,.0f} pkt/s"
    )
    vectorized = run_scenario(params, switch_factory=VectorizedAskSwitch)
    print(
        f"vectorized: {vectorized['wall_seconds']:8.3f}s  "
        f"{vectorized['events_per_sec']:>10,.0f} ev/s  "
        f"{vectorized['packets_per_sec']:>9,.0f} pkt/s"
    )
    data_plane = bench_data_plane(params)
    print(
        f"data plane: scalar {data_plane['scalar_packets_per_sec']:>9,.0f} pkt/s  "
        f"vector {data_plane['vector_packets_per_sec']:>9,.0f} pkt/s  "
        f"({data_plane['vector_vs_scalar']}x)"
    )

    repeat_identical = optimized["fingerprint"] == repeat["fingerprint"]
    reference_identical = optimized["fingerprint"] == reference["fingerprint"]
    vectorized_identical = optimized["fingerprint"] == vectorized["fingerprint"]
    speedup_events = round(
        optimized["events_per_sec"] / reference["events_per_sec"], 3
    )
    speedup_packets = round(
        optimized["packets_per_sec"] / reference["packets_per_sec"], 3
    )

    report = {
        "benchmark": "hotpath",
        "mode": "smoke" if args.smoke else "full",
        "scenario": params,
        "python": platform.python_version(),
        "optimized": optimized,
        "optimized_repeat": repeat,
        "reference": reference,
        "vectorized": vectorized,
        "data_plane": data_plane,
        "sharded": sharded,
        "speedup": {
            "events_per_sec": speedup_events,
            "packets_per_sec": speedup_packets,
        },
        "determinism": {
            "repeat_identical": repeat_identical,
            "reference_identical": reference_identical,
            "vectorized_identical": vectorized_identical,
            "sharded_identical": sharded["identical"],
        },
    }
    history = load_history(args.output)
    floor = history[-1]["packets_per_sec"] if history else None
    data_plane["floor_packets_per_sec"] = floor
    if floor:
        data_plane["vector_vs_floor"] = round(
            data_plane["vector_packets_per_sec"] / floor, 3
        )
    report["history"] = history + [
        {
            "mode": report["mode"],
            "python": report["python"],
            "packets_per_sec": optimized["packets_per_sec"],
            "reference_packets_per_sec": reference["packets_per_sec"],
            "speedup_packets_per_sec": speedup_packets,
            "speedup_events_per_sec": speedup_events,
            "vectorized_packets_per_sec": vectorized["packets_per_sec"],
            "data_plane_scalar_packets_per_sec": data_plane[
                "scalar_packets_per_sec"
            ],
            "data_plane_vector_packets_per_sec": data_plane[
                "vector_packets_per_sec"
            ],
            "data_plane_vector_vs_floor": data_plane.get("vector_vs_floor"),
            "sharded_packets_per_sec": sharded["packets_per_sec"],
            "sharded_vs_serial": sharded["sharded_vs_serial"],
            "sharded_cpus": sharded["cpus"],
            "sharded_execution": sharded["execution"],
        }
    ]
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"speedup: {speedup_packets}x pkt/s, {speedup_events}x ev/s")
    print(f"report: {args.output}")

    if not repeat_identical:
        print("FAIL: same seed, different schedule across repeated runs",
              file=sys.stderr)
        return 2
    if not reference_identical:
        print("FAIL: optimized fast path diverges from the seed reference",
              file=sys.stderr)
        return 2
    if not vectorized_identical:
        for key in optimized["fingerprint"]:
            a = optimized["fingerprint"][key]
            b = vectorized["fingerprint"][key]
            if a != b:
                print(f"  {key}: scalar={a} vectorized={b}", file=sys.stderr)
        print("FAIL: vectorized backend diverges from the scalar oracle",
              file=sys.stderr)
        return 2
    if not sharded["identical"]:
        print("FAIL: sharded simulator diverges from the serial oracle",
              file=sys.stderr)
        return 2
    print("determinism guard: OK (4 runs + sharded leg, identical fingerprints)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
