"""Regenerates Fig. 13: bandwidth overhead and scalability.

(a) goodput vs data channels: NoAggr 91.75 Gbps with 2 channels, ASK
73.96 Gbps needing 4 — the overhead of fixed small slots.
(b) per-sender throughput vs sender count: ASK flat, NoAggr ∝ 1/n
(11.88 Gbps at 8 senders).  A functional simulation cross-checks that the
switch, not the receiver, absorbs ASK's traffic.
"""

from repro.core.config import AskConfig
from repro.core.service import AskService
from repro.experiments import fig13_scalability


def test_fig13_scalability(benchmark, report):
    result = benchmark.pedantic(fig13_scalability.run, iterations=1, rounds=3)
    report("fig13_scalability", fig13_scalability.format_report(result))
    assert abs(max(result.ask_goodput.ys()) - 73.96) < 1.0
    assert abs(max(result.noaggr_goodput.ys()) - 91.75) < 1.0
    assert abs(result.noaggr_per_sender.y_at(8) - 11.88) < 1.0
    assert result.ask_per_sender.y_at(8) == result.ask_per_sender.y_at(1)


def test_fig13_functional_absorption(benchmark):
    def run():
        cfg = AskConfig.small(aggregators_per_aa=2048)
        service = AskService(cfg, hosts=5)
        stream = [(("k%02d" % (i % 25)).encode(), 1) for i in range(500)]
        streams = {f"h{i}": list(stream) for i in range(4)}
        result = service.aggregate(streams, receiver="h4", check=True)
        return result.stats

    stats = benchmark.pedantic(run, iterations=1, rounds=1)
    # The switch absorbed nearly everything; the receiver saw few packets.
    assert stats.switch_ack_ratio > 0.9
