"""Micro-benchmarks of the library's own hot paths (not a paper figure).

These keep the simulator honest as the codebase evolves: tuples/second
through the packer, packets/second through the full switch pass, and
end-to-end simulated aggregation throughput.
"""

from repro.core.config import AskConfig
from repro.core.packer import pack_stream
from repro.core.packet import AskPacket, PacketFlag
from repro.core.service import AskService
from repro.net.simulator import Simulator
from repro.switch.switch import AskSwitch
from repro.workloads.generators import zipf_stream


def test_packer_throughput(benchmark):
    cfg = AskConfig()
    stream = zipf_stream(20_000, 4096, alpha=1.0, seed=1,
                         key_fn=lambda r: ("%06d" % r).encode())
    payloads, stats = benchmark(pack_stream, stream, cfg)
    assert stats.tuples_in == 20_000


def test_switch_pass_throughput(benchmark):
    cfg = AskConfig.small(aggregators_per_aa=4096)
    switch = AskSwitch(cfg, Simulator(), max_tasks=4, max_channels=8)
    switch.controller.allocate_region(1)
    payloads, _ = pack_stream(
        zipf_stream(8_000, 512, alpha=1.0, seed=2,
                    key_fn=lambda r: ("%04d" % r).encode()),
        cfg,
    )
    packets = [
        AskPacket(PacketFlag.DATA, 1, "h0", "h1", 0, seq,
                  bitmap=p.bitmap, slots=p.slots)
        for seq, p in enumerate(payloads)
    ]

    def run():
        for pkt in packets:
            switch.program.process(switch.pipeline.begin_pass(), pkt)
        return switch.stats.data_packets

    processed = benchmark.pedantic(run, iterations=1, rounds=1)
    assert processed >= len(packets)


def test_end_to_end_simulation_throughput(benchmark):
    stream = [(("k%03d" % (i % 200)).encode(), 1) for i in range(5_000)]

    def run():
        service = AskService(AskConfig.small(aggregators_per_aa=1024), hosts=2)
        return service.aggregate({"h0": stream}, receiver="h1")

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.stats.input_tuples == 5_000
