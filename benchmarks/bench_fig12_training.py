"""Regenerates Fig. 12: distributed-training throughput (images/s) for
ResNet50/101/152 and VGG11/16/19 under ASK, ATP, SwitchML and host BytePS.

Paper shape: the three INA systems are similar; ASK and ATP slightly
outperform SwitchML (small packets) on some models; all INA beats host PS.
A tiny functional all-reduce through the simulated switch cross-checks the
gradient arithmetic.
"""

import numpy as np

from repro.apps.training.ps import run_functional_training
from repro.experiments import fig12_training


def test_fig12_training(benchmark, report):
    result = benchmark.pedantic(fig12_training.run, iterations=1, rounds=3)
    report("fig12_training", fig12_training.format_report(result))
    for model, per_system in result.throughput.items():
        assert per_system["switchml"] <= per_system["ask"]
        assert per_system["byteps"] < per_system["switchml"]
        assert abs(per_system["ask"] - per_system["atp"]) / per_system["atp"] < 0.05


def test_fig12_functional_allreduce(benchmark):
    sums = benchmark.pedantic(
        run_functional_training,
        kwargs={"workers": 3, "elements": 256, "iterations": 1, "seed": 9},
        iterations=1,
        rounds=1,
    )
    rng = np.random.default_rng(9)
    expected = sum(rng.integers(-1000, 1000, size=256) for _ in range(3))
    assert sums[0].tolist() == expected.tolist()
