"""Regenerates Fig. 11: mapper/reducer task completion times.

Paper anchors at 10^8 tuples per mapper: ASK mappers ≈1.67 s (no CPU
pre-aggregation) vs 15.89–17.67 s for the baselines; ASK reducers run
longer (they aggregate the co-located mappers' share), but the mapper
saving dominates.
"""

from repro.experiments import fig11_tct


def test_fig11_tct(benchmark, report):
    result = benchmark.pedantic(fig11_tct.run, iterations=1, rounds=3)
    report("fig11_tct", fig11_tct.format_report(result))
    assert abs(result.mapper_tct["ask"] - 1.67) < 0.2
    for backend in ("spark", "spark_shm", "spark_rdma"):
        assert 15.0 <= result.mapper_tct[backend] <= 19.5
        assert result.reducer_tct["ask"] > result.reducer_tct[backend]
        assert result.mapper_saving_vs(backend) > result.reducer_cost_vs(backend)
