"""Benches for the §6/§7 extensions: multi-rack hierarchy, congestion
control, and the PISA-vs-Trio backend comparison."""

from repro.core.config import AskConfig
from repro.core.multirack_service import MultiRackService
from repro.core.service import AskService
from repro.perf.metrics import format_table
from repro.switch.trio import TrioSwitch
from repro.workloads.datasets import get_dataset


def test_multirack_core_traffic_reduction(benchmark, report):
    """§7 hierarchy: sender-side TORs absorb traffic before the core."""

    def run():
        cfg = AskConfig.small(aggregators_per_aa=2048, trace=True)
        service = MultiRackService(
            cfg, racks={"r0": ["a", "b"], "r1": ["c"], "r2": ["d"]}
        )
        streams = {
            host: [(("k%02d" % (i % 25)).encode(), 1) for i in range(1500)]
            for host in ("c", "d")
        }
        result = service.aggregate(streams, receiver="a", check=True)
        core = sum(
            service.trace.count(site=f"core:{src}->r0") for src in ("r1", "r2")
        )
        return result.stats.data_packets_sent, core

    sent, core = benchmark.pedantic(run, iterations=1, rounds=1)
    report(
        "ext_multirack",
        format_table(
            ["metric", "packets"],
            [["data packets sent", sent], ["core crossings to receiver rack", core]],
            title="multi-rack hierarchy — rack-local aggregation spares the core",
        ),
    )
    assert core < sent / 5


def test_congestion_control_queue_depth(benchmark, report):
    """§7 congestion control: AIMD bounds the bottleneck queue."""

    def run():
        depths = {}
        for cc in (False, True):
            cfg = AskConfig.small(
                window_size=64,
                congestion_control=cc,
                ecn_threshold_bytes=2_000,
                link_bandwidth_gbps=1.0,
                retransmit_timeout_us=1000.0,
            )
            service = AskService(cfg, hosts=2)
            stream = [(("k%03d" % (i % 100)).encode(), 1) for i in range(3000)]
            service.aggregate({"h0": stream}, receiver="h1", check=True)
            depths[cc] = service.topology.uplink("h0").link.max_backlog_bytes
        return depths

    depths = benchmark.pedantic(run, iterations=1, rounds=1)
    report(
        "ext_congestion",
        format_table(
            ["mode", "max uplink backlog (B)"],
            [["window-only (W=64)", depths[False]], ["ECN + AIMD", depths[True]]],
            title="congestion control — queue depth at a 1 Gbps bottleneck",
        ),
    )
    assert depths[True] < depths[False] / 3


def test_trio_vs_pisa_backends(benchmark, report):
    """§6: the run-to-completion backend aggregates the whole key space."""
    stream = get_dataset("NG", 2_000).stream(4_000, seed=3)

    def run():
        rows = {}
        for label, factory in (("PISA", None), ("Trio", TrioSwitch)):
            kwargs = {"switch_factory": factory} if factory else {}
            cfg = AskConfig.small(shadow_copy=False, aggregators_per_aa=4096)
            service = AskService(cfg, hosts=2, **kwargs)
            result = service.aggregate({"h0": list(stream)}, receiver="h1", check=True)
            rows[label] = (
                result.stats.switch_aggregation_ratio,
                result.stats.switch_ack_ratio,
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    report(
        "ext_trio",
        format_table(
            ["backend", "tuples aggregated", "packets ACKed"],
            [
                [label, f"{agg * 100:.1f}%", f"{ack * 100:.1f}%"]
                for label, (agg, ack) in rows.items()
            ],
            title="PISA vs Trio backend on the NG corpus (long keys included)",
        ),
    )
    assert rows["Trio"][0] > rows["PISA"][0]
