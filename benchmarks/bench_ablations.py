"""Ablation benches for the design choices DESIGN.md §4 calls out:

- compact vs 2W-bit ``seen`` (memory and access budget),
- sender-assisted addressing vs random slot placement (aggregator waste),
- shadow-copy swap-threshold sensitivity,
- coalesced vs naive variable-length key placement (correctness).
"""

import numpy as np

from repro.core.config import AskConfig
from repro.experiments.ablations import (
    aggregator_footprint,
    naive_segment_lookup,
    seen_memory_comparison,
)
from repro.experiments.fastsim import simulate_occupancy
from repro.perf.metrics import format_table
from repro.workloads.generators import zipf_stream


def test_ablation_seen_memory(benchmark, report):
    comparison = benchmark.pedantic(seen_memory_comparison, iterations=1, rounds=3)
    report(
        "ablation_seen",
        format_table(
            ["design", "bits/channel", "register accesses/pass", "PISA-legal"],
            [
                ["compact (Eq. 8)", comparison.compact_bits_per_channel,
                 comparison.compact_accesses_per_pass, "yes"],
                ["2W reference (Eqs. 5-7)", comparison.reference_bits_per_channel,
                 comparison.reference_accesses_per_pass, "no"],
            ],
            title=f"seen ablation — compact design saves "
            f"{comparison.memory_saving * 100:.0f}% SRAM (paper: 50%)",
        ),
    )
    assert comparison.memory_saving == 0.5


def test_ablation_addressing(benchmark, report):
    cfg = AskConfig(shadow_copy=False)
    stream = zipf_stream(20_000, 512, alpha=1.0, order="shuffled", seed=3,
                         key_fn=lambda r: ("%04d" % r).encode())

    def run():
        return (
            aggregator_footprint(stream, cfg, randomized=False),
            aggregator_footprint(stream, cfg, randomized=True),
        )

    partitioned, randomized = benchmark.pedantic(run, iterations=1, rounds=1)
    report(
        "ablation_addressing",
        format_table(
            ["scheme", "aggregators reserved (512 keys)"],
            [
                ["sender-assisted partition (§3.2.2)", partitioned],
                ["random slot placement", randomized],
            ],
            title="addressing ablation — single-key-multiple-spot waste",
        ),
    )
    assert partitioned == 512
    assert randomized > 4 * partitioned


def test_ablation_swap_threshold(benchmark, report):
    """Sweep the receiver's swap threshold: too rare and cold keys squat;
    too frequent costs fetches (reported as epochs)."""
    ranks = np.array(
        [int.from_bytes(k, "little") for k, _ in zipf_stream(
            300_000, 2**12, alpha=1.0, order="zipf_reverse"
        )],
        dtype=np.int64,
    )
    aggregators = 2**12 // 16

    def run():
        rows = []
        for threshold in (64, 128, 256, 512, 2048, 8192, 65536):
            outcome = simulate_occupancy(
                ranks, aggregators, shadow_copy=True, swap_every=threshold
            )
            rows.append([threshold, f"{outcome.switch_ratio * 100:.2f}%", outcome.epochs])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    report(
        "ablation_swap_threshold",
        format_table(
            ["swap every (tuples)", "switch-aggregated", "fetch epochs"],
            rows,
            title="shadow-copy swap-threshold sensitivity (Zipf-reverse, ratio 1/16)",
        ),
    )
    ratios = [float(r[1].rstrip("%")) for r in rows]
    assert ratios[0] > ratios[-1]  # frequent swaps rescue cold-first streams


def test_ablation_naive_segments(benchmark, report):
    outcome = benchmark.pedantic(naive_segment_lookup, iterations=1, rounds=1)
    report(
        "ablation_naive_segments",
        "variable-length key placement ablation:\n"
        f"  naive per-segment lookup false-matches X1Y2: "
        f"{outcome['false_match_x1y2']} (the §3.2.3 bug)\n"
        "  coalesced unified-index placement: false match impossible "
        "(validated by tests/experiments/test_ablations.py)",
    )
    assert outcome["false_match_x1y2"] is True
