"""Benchmark-harness helpers.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment under ``pytest-benchmark`` timing and emits the textual
equivalent of the paper's rows/series — both to stdout and to
``benchmarks/results/<name>.txt`` so the report survives output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Write (and print) a named experiment report."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}\n[report written to {path}]")

    return _report
