#!/usr/bin/env python
"""Fail CI on a hot-path performance regression.

Absolute packets/s depend entirely on the runner (shared CI machines vary
by 2x between runs), so gating on them would flap.  Each leg's
optimized/reference-style *ratio* does not: ``bench_hotpath.py`` measures
both sides of every ratio in the same process on the same machine, so
machine noise cancels and the ratio tracks only what the code does.  The
gate compares each fresh ratio against the **best value that leg ever
recorded** in the checked-in baseline's history — not merely the latest —
so a slow decay across PRs cannot ratchet the floor down with it.  A
ratio may drop at most ``--tolerance`` (default 20%) below its best
historical value — doubled when the fresh report's mode differs from the
baseline's (CI's smoke run vs the checked-in full baseline: ratios
shrink with the scenario, so cross-mode comparisons get slack while
still catching catastrophic regressions):

``hotpath_speedup``
    optimized vs seed-reference packets/s on the lossy 4-host scenario
    (``speedup.packets_per_sec`` / ``speedup_packets_per_sec``).
``data_plane_ratio``
    SoA batch engine vs scalar compiled program on identical wide
    batches (``vector_packets_per_sec / scalar_packets_per_sec``).

The sharded full-scenario leg gets one additional *absolute* gate, full
mode only (the smoke workload is too small for rates to mean anything):
its ``packets_per_sec`` — fabric packet-hops per second of sharded wall
time, best-of-2, measured first in the bench run before the other legs
heat the machine — must stay within ``--tolerance`` of three times the
PR 5 full-scenario floor of 25892.4 packets/s.  That is the scaling
claim of the sharded backend stated as a number; the report's recorded
``cpus``/``execution`` fields say what hardware produced it.

The determinism flags are enforced too: a report whose runs disagree is
a correctness failure regardless of speed.  ``vectorized_identical``
asserts the SoA batch engine matched the scalar oracle byte-for-byte;
``sharded_identical`` asserts the rack-sharded conservative PDES run
matched the one-process serial oracle on **every** run of the best-of-2
— ``values_sha256``, all per-link counters, drop/dedup totals — so a
sharding bug fails CI even though the tier-1 suite may not cover that
exact packet schedule.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke -o fresh.json
    python benchmarks/check_regression.py fresh.json [--baseline BENCH_hotpath.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The PR 5 full-scenario floor (packets/s recorded in BENCH_hotpath.json
#: history) and the sharded backend's scaling claim against it.
SHARDED_BASE_FLOOR = 25892.4
SHARDED_SPEEDUP = 3.0


def load_report(path: Path) -> dict:
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"cannot read benchmark report {path}: {exc}")
    if not text.strip():
        raise SystemExit(
            f"benchmark report {path} is empty — did bench_hotpath.py "
            "fail before writing its output?"
        )
    try:
        report = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark report {path} is not valid JSON: {exc}")
    if not isinstance(report, dict):
        raise SystemExit(
            f"benchmark report {path} must be a JSON object, "
            f"got {type(report).__name__}"
        )
    if report.get("benchmark") != "hotpath":
        raise SystemExit(f"{path} is not a hotpath benchmark report")
    speedup = report.get("speedup")
    if not isinstance(speedup, dict) or "packets_per_sec" not in speedup:
        raise SystemExit(
            f"benchmark report {path} has no speedup.packets_per_sec "
            "ratio — it looks truncated or from an incompatible "
            "bench_hotpath.py version"
        )
    return report


def _entry_hotpath_speedup(entry: dict) -> float | None:
    value = entry.get("speedup_packets_per_sec")
    return float(value) if isinstance(value, (int, float)) else None


def _entry_data_plane_ratio(entry: dict) -> float | None:
    vector = entry.get("data_plane_vector_packets_per_sec")
    scalar = entry.get("data_plane_scalar_packets_per_sec")
    if (
        isinstance(vector, (int, float))
        and isinstance(scalar, (int, float))
        and scalar > 0
    ):
        return float(vector) / float(scalar)
    return None


def _fresh_hotpath_speedup(report: dict) -> float:
    return float(report["speedup"]["packets_per_sec"])


def _fresh_data_plane_ratio(report: dict) -> float | None:
    data_plane = report.get("data_plane")
    if not isinstance(data_plane, dict):
        return None
    return _entry_data_plane_ratio(
        {
            "data_plane_vector_packets_per_sec": data_plane.get(
                "vector_packets_per_sec"
            ),
            "data_plane_scalar_packets_per_sec": data_plane.get(
                "scalar_packets_per_sec"
            ),
        }
    )


#: The ratio legs: name -> (extract-from-fresh-report, extract-from-history-entry).
#: A leg absent from the fresh report or from every baseline history entry
#: (reports predating it) is skipped, never failed.
RATIO_LEGS = {
    "hotpath_speedup": (_fresh_hotpath_speedup, _entry_hotpath_speedup),
    "data_plane_ratio": (_fresh_data_plane_ratio, _entry_data_plane_ratio),
}


def best_historical(baseline: dict, extract) -> float | None:
    """The best value ``extract`` yields across the baseline's history.

    The baseline's own headline numbers are its ``history[-1]`` entry, so
    scanning the history covers the baseline run itself.
    """
    values = []
    for entry in baseline.get("history") or []:
        if isinstance(entry, dict):
            value = extract(entry)
            if value is not None:
                values.append(value)
    return max(values) if values else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("report", type=Path, help="fresh bench_hotpath.py output")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="checked-in baseline report (default: repo BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional drop vs each leg's floor (default 0.20)",
    )
    args = parser.parse_args(argv)

    fresh = load_report(args.report)
    baseline = load_report(args.baseline)

    failures = 0
    determinism = fresh.get("determinism", {})
    for flag in (
        "repeat_identical",
        "reference_identical",
        "vectorized_identical",
        "sharded_identical",
    ):
        if not determinism.get(flag):
            print(
                f"FAIL: {args.report} determinism flag {flag!r} is not true "
                "— the runs disagree (or the report predates the flag)",
                file=sys.stderr,
            )
            failures += 1

    # Reports may carry informational sections the gate does not know
    # (the chaos drills' "gray" degradation section is the first); they
    # are surfaced but never gated — adding observability to a report
    # must not be able to fail CI.
    gray = fresh.get("gray")
    if isinstance(gray, dict) and gray:
        print(
            "info: gray degradation section present "
            f"(timeouts={gray.get('timeouts')}, "
            f"spurious_retransmissions={gray.get('spurious_retransmissions')})"
            " — informational, not gated"
        )

    # Ratios shrink with the scenario (the smoke workload amortizes less
    # setup per packet), so a smoke run compared against full-mode
    # history gets double the tolerance: it still catches catastrophic
    # regressions without false-failing on scenario-size effects.
    cross_mode = fresh.get("mode") != baseline.get("mode")
    ratio_tolerance = min(args.tolerance * 2.0, 0.9) if cross_mode else args.tolerance
    for leg, (fresh_extract, entry_extract) in RATIO_LEGS.items():
        fresh_value = fresh_extract(fresh)
        if fresh_value is None:
            print(f"skip: {leg} — fresh report does not carry this leg")
            continue
        floor_value = best_historical(baseline, entry_extract)
        if floor_value is None:
            print(f"skip: {leg} — baseline history has no record of this leg")
            continue
        floor = floor_value * (1.0 - ratio_tolerance)
        verdict = "OK" if fresh_value >= floor else "FAIL"
        cross_note = ", cross-mode" if cross_mode else ""
        print(
            f"{verdict}: {leg} {fresh_value:.3f}x vs best historical "
            f"{floor_value:.3f}x (floor {floor:.3f}x at "
            f"{ratio_tolerance:.0%} tolerance{cross_note})"
        )
        if verdict == "FAIL":
            print(
                f"{leg} regressed more than {ratio_tolerance:.0%} below the "
                "best value the baseline history ever recorded",
                file=sys.stderr,
            )
            failures += 1

    sharded = fresh.get("sharded")
    if fresh.get("mode") != "full":
        print("skip: sharded_throughput — absolute gate applies to full mode only")
    elif not isinstance(sharded, dict) or "packets_per_sec" not in sharded:
        print(
            "FAIL: full-mode report has no sharded leg — bench_hotpath.py "
            "must run the sharded full-scenario leg",
            file=sys.stderr,
        )
        failures += 1
    else:
        rate = float(sharded["packets_per_sec"])
        target = SHARDED_BASE_FLOOR * SHARDED_SPEEDUP
        floor = target * (1.0 - args.tolerance)
        verdict = "OK" if rate >= floor else "FAIL"
        print(
            f"{verdict}: sharded_throughput {rate:,.1f} packet-hops/s = "
            f"{rate / SHARDED_BASE_FLOOR:.2f}x the {SHARDED_BASE_FLOOR:,.1f} "
            f"floor (target {SHARDED_SPEEDUP:.0f}x, gate floor {floor:,.1f} "
            f"at {args.tolerance:.0%} tolerance; "
            f"{sharded.get('execution')} on {sharded.get('cpus')} cpu)"
        )
        if verdict == "FAIL":
            print(
                "the sharded full-scenario leg fell below "
                f"{SHARDED_SPEEDUP:.0f}x the PR 5 floor",
                file=sys.stderr,
            )
            failures += 1

    mode_note = (
        f"fresh mode={fresh.get('mode')}, baseline mode={baseline.get('mode')}"
    )
    if failures:
        print(f"{failures} gate(s) failed ({mode_note})", file=sys.stderr)
        return 1
    print(f"all gates passed ({mode_note})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
