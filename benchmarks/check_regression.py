#!/usr/bin/env python
"""Fail CI on a hot-path performance regression.

Absolute packets/s depend entirely on the runner (shared CI machines vary
by 2x between runs), so gating on them would flap.  The optimized/reference
*speedup ratio* does not: ``bench_hotpath.py`` measures both legs in the
same process on the same machine, so machine noise cancels and the ratio
tracks only what the code does.  The gate therefore compares the fresh
report's speedup ratio against the checked-in baseline's and fails when it
drops by more than ``--tolerance`` (default 20%).

The determinism flags are enforced too: a report whose runs disagree is a
correctness failure regardless of speed.  That includes the vectorized
backend — ``vectorized_identical`` asserts the SoA batch engine produced
a byte-identical end-to-end fingerprint (``values_sha256``, drop/dedup
counters, ``events_processed``) to the scalar oracle on the bench
scenario, so a vectorization bug fails CI even though the tier-1 suite
may not cover that exact packet schedule.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke -o fresh.json
    python benchmarks/check_regression.py fresh.json [--baseline BENCH_hotpath.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_report(path: Path) -> dict:
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"cannot read benchmark report {path}: {exc}")
    if not text.strip():
        raise SystemExit(
            f"benchmark report {path} is empty — did bench_hotpath.py "
            "fail before writing its output?"
        )
    try:
        report = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark report {path} is not valid JSON: {exc}")
    if not isinstance(report, dict):
        raise SystemExit(
            f"benchmark report {path} must be a JSON object, "
            f"got {type(report).__name__}"
        )
    if report.get("benchmark") != "hotpath":
        raise SystemExit(f"{path} is not a hotpath benchmark report")
    speedup = report.get("speedup")
    if not isinstance(speedup, dict) or "packets_per_sec" not in speedup:
        raise SystemExit(
            f"benchmark report {path} has no speedup.packets_per_sec "
            "ratio — it looks truncated or from an incompatible "
            "bench_hotpath.py version"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("report", type=Path, help="fresh bench_hotpath.py output")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="checked-in baseline report (default: repo BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional speedup-ratio drop vs baseline (default 0.20)",
    )
    args = parser.parse_args(argv)

    fresh = load_report(args.report)
    baseline = load_report(args.baseline)

    determinism = fresh.get("determinism", {})
    for flag in ("repeat_identical", "reference_identical", "vectorized_identical"):
        if not determinism.get(flag):
            print(
                f"FAIL: {args.report} determinism flag {flag!r} is not true "
                "— the runs disagree (or the report predates the flag)",
                file=sys.stderr,
            )
            return 1

    fresh_ratio = fresh["speedup"]["packets_per_sec"]
    base_ratio = baseline["speedup"]["packets_per_sec"]
    floor = base_ratio * (1.0 - args.tolerance)
    verdict = "OK" if fresh_ratio >= floor else "FAIL"
    print(
        f"{verdict}: speedup {fresh_ratio:.3f}x vs baseline {base_ratio:.3f}x "
        f"(floor {floor:.3f}x at {args.tolerance:.0%} tolerance; "
        f"fresh mode={fresh.get('mode')}, baseline mode={baseline.get('mode')})"
    )
    if verdict == "FAIL":
        print(
            "the optimized hot path regressed by more than "
            f"{args.tolerance:.0%} relative to the seed reference",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
