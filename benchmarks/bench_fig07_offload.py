"""Regenerates Fig. 7: computation offload — ASK (1/2/4 data channels) vs
host-only PreAggr (8–56 threads) on 51.2 GB of tuples: JCT and CPU%.

Paper anchors: PreAggr 111.20 s @ 8 threads, 33.22 s @ 32; ASK ≈6 s with
4 channels at 7.14 % CPU.
"""

from repro.experiments import fig07_offload


def test_fig07_offload(benchmark, report):
    result = benchmark.pedantic(fig07_offload.run, iterations=1, rounds=3)
    report("fig07_offload", fig07_offload.format_report(result))
    assert abs(result.preaggr_point(8).jct_seconds - 111.2) < 2.0
    assert abs(result.preaggr_point(32).jct_seconds - 33.22) < 1.0
    assert result.ask_point(4).jct_seconds < 8.0
    assert result.ask_point(4).cpu_percent < 8.0
