"""Regenerates Fig. 9: hot-key agnostic prioritization.

Sweeps the aggregator-to-distinct-key ratio for Uniform / Zipf /
Zipf-reversed streams, FCFS vs shadow-copy prioritization.  Paper headline:
with prioritization a 1/16 ratio aggregates ≈95.85 % of tuples on the
switch, and the result no longer depends on the key arrival order.
"""

from repro.experiments import fig09_prioritization


def test_fig09_prioritization(benchmark, report):
    result = benchmark.pedantic(
        fig09_prioritization.run,
        kwargs={"num_keys": 2**13, "num_tuples": 500_000},
        iterations=1,
        rounds=1,
    )
    report("fig09_prioritization", fig09_prioritization.format_report(result))
    ratio = 1 / 16
    assert result.ratio_at("Zipf", ratio, prioritized=True) > 0.9
    assert result.ratio_at("Zipf (reverse)", ratio, prioritized=True) > 0.9
    assert result.ratio_at("Zipf (reverse)", ratio, prioritized=False) < 0.05
    # Agnosticism: order no longer matters with the shadow copy.
    gap = abs(
        result.ratio_at("Zipf", ratio, prioritized=True)
        - result.ratio_at("Zipf (reverse)", ratio, prioritized=True)
    )
    assert gap < 0.05
