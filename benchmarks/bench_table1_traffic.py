"""Regenerates Table 1: traffic reduction on the four (synthetic) datasets.

The full functional pipeline runs: corpus → packer → sliding window → PISA
switch → receiver.  Paper bands: 85.73–94.32 % of tuples aggregated on the
switch; 72.01–90.36 % of packets fully absorbed (ACKed) by it.
"""

from repro.experiments import table1_traffic


def test_table1_traffic(benchmark, report):
    result = benchmark.pedantic(
        table1_traffic.run, kwargs={"num_tuples": 60_000}, iterations=1, rounds=1
    )
    report("table1_traffic", table1_traffic.format_report(result))
    for name, row in result.rows.items():
        assert 80 <= row.tuple_ratio <= 100, name
        assert 60 <= row.packet_ratio <= 100, name
    # Orderings the paper reports: yelp absorbs the fewest packets, BAC the
    # most tuples.
    assert min(result.rows.values(), key=lambda r: r.packet_ratio).dataset == "yelp"
    assert max(result.rows.values(), key=lambda r: r.tuple_ratio).dataset == "BAC"
