"""Regenerates Fig. 3: single-machine AKV/s — Spark vs strawman INA vs ASK.

Paper anchors: strawman reaches the single-key line rate with 16 cores and
peaks at 3.4x Spark; full ASK reaches up to 155x Spark at equal cores.
"""

from repro.experiments import fig03_strawman


def test_fig03_strawman(benchmark, report):
    result = benchmark.pedantic(fig03_strawman.run, iterations=1, rounds=3)
    report("fig03_strawman", fig03_strawman.format_report(result))
    assert 3.2 <= result.peak_gain_strawman <= 3.6
    assert 140 <= result.max_ask_gain <= 170
